//===- bench/BenchCommon.cpp - Shared benchmark plumbing --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "baselines/CirqGreedy.h"
#include "baselines/QmapAstar.h"
#include "baselines/Sabre.h"
#include "baselines/TketBounded.h"
#include "core/Qlosure.h"
#include "support/StringUtils.h"
#include "topology/Backends.h"
#include "support/Table.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace qlosure;
using namespace qlosure::bench;

BenchConfig qlosure::bench::parseArgs(int Argc, char **Argv) {
  BenchConfig Config;
  for (int I = 1; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--full") == 0) {
      Config.Full = true;
    } else if (std::strcmp(Argv[I], "--no-verify") == 0) {
      Config.Verify = false;
    } else if (std::strcmp(Argv[I], "--affine") == 0) {
      Config.Affine = true;
    } else if (std::strcmp(Argv[I], "--simd") == 0) {
      Config.Simd = true;
    } else if (std::strcmp(Argv[I], "--seed") == 0 && I + 1 < Argc) {
      Config.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (std::strcmp(Argv[I], "--threads") == 0 && I + 1 < Argc) {
      Config.Threads =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strcmp(Argv[I], "--fleet") == 0 && I + 1 < Argc) {
      Config.Fleet =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (std::strncmp(Argv[I], "--benchmark", 11) == 0) {
      // Tolerate google-benchmark style flags so "for b in bench/*" loops
      // can pass uniform arguments.
    } else {
      std::fprintf(stderr,
                   "usage: %s [--full] [--seed N] [--no-verify] "
                   "[--affine] [--simd] [--threads N] [--fleet N]\n",
                   Argv[0]);
      std::exit(2);
    }
  }
  return Config;
}

std::vector<std::unique_ptr<Router>>
qlosure::bench::makePaperMappers(double QmapBudgetSeconds) {
  std::vector<std::unique_ptr<Router>> Mappers;
  Mappers.push_back(std::make_unique<SabreRouter>());
  QmapOptions Qmap;
  Qmap.TimeBudgetSeconds = QmapBudgetSeconds;
  Mappers.push_back(std::make_unique<QmapAstarRouter>(Qmap));
  Mappers.push_back(std::make_unique<CirqGreedyRouter>());
  Mappers.push_back(std::make_unique<TketBoundedRouter>());
  Mappers.push_back(std::make_unique<QlosureRouter>());
  return Mappers;
}

std::vector<unsigned>
qlosure::bench::quekoDepths(const BenchConfig &Config) {
  if (Config.Full)
    return {100, 200, 300, 400, 500, 600, 700, 800, 900};
  return {100, 200, 600};
}

void qlosure::bench::printMediumLargeTable(
    const std::string &Title,
    const std::map<std::string, MediumLargeSummary> &Summary,
    const std::map<std::string, std::pair<double, double>> &Reference,
    const char *Fmt) {
  std::printf("\n%s\n", Title.c_str());
  std::vector<std::string> Header{"Mapper", "Medium", "Large"};
  if (!Reference.empty()) {
    Header.push_back("Paper Medium");
    Header.push_back("Paper Large");
  }
  Table T(Header);
  // Paper row order.
  const char *Order[] = {"SABRE", "QMAP", "Cirq", "Pytket", "Qlosure"};
  auto cell = [Fmt](double V, bool TimedOut) {
    if (TimedOut && V == 0)
      return std::string("timeout");
    std::string Out = formatString(Fmt, V);
    if (TimedOut)
      Out += "*";
    return Out;
  };
  for (const char *Mapper : Order) {
    auto It = Summary.find(Mapper);
    if (It == Summary.end())
      continue;
    std::vector<std::string> Row{
        Mapper, cell(It->second.Medium, It->second.MediumTimedOut),
        cell(It->second.Large, It->second.LargeTimedOut)};
    if (!Reference.empty()) {
      auto RefIt = Reference.find(Mapper);
      if (RefIt != Reference.end()) {
        Row.push_back(formatString(Fmt, RefIt->second.first));
        Row.push_back(formatString(Fmt, RefIt->second.second));
      } else {
        Row.push_back("-");
        Row.push_back("-");
      }
    }
    T.addRow(std::move(Row));
  }
  std::fputs(T.render().c_str(), stdout);
  if (!Reference.empty())
    std::printf("(* = some instances hit the mapper's time budget and were "
                "excluded from the average)\n");
}

std::vector<RunRecord>
qlosure::bench::runQuekoGrid(const QuekoGridSpec &Spec,
                             const BenchConfig &Config) {
  CouplingGraph Backend = makeBackendByName(Spec.BackendName);
  auto Mappers = makePaperMappers(Spec.QmapBudgetSeconds);
  std::vector<Router *> MapperPtrs;
  for (auto &M : Mappers)
    MapperPtrs.push_back(M.get());

  std::vector<RunRecord> Records;
  for (const std::string &GenName : Spec.GenNames) {
    CouplingGraph Gen = makeBackendByName(GenName);
    QuekoSweepConfig Sweep;
    Sweep.Depths = Spec.Depths;
    Sweep.CircuitsPerDepth = Spec.CircuitsPerDepth;
    Sweep.SeedBase = Config.Seed;
    Sweep.Eval.Verify = Config.Verify;
    Sweep.Threads = Config.Threads;
    auto Batch = runQuekoSweep(Gen, Backend, MapperPtrs, Sweep);
    Records.insert(Records.end(), Batch.begin(), Batch.end());
  }
  return Records;
}

std::vector<QuekoGridSpec>
qlosure::bench::paperQuekoGrids(const BenchConfig &Config) {
  std::vector<unsigned> Depths = quekoDepths(Config);
  std::vector<QuekoGridSpec> Grids;
  Grids.push_back({"sherbrooke",
                   {"aspen16", "sycamore54", "kings9x9"},
                   Depths,
                   Config.Full ? 2u : 1u,
                   60.0});
  Grids.push_back({"ankaa3",
                   {"aspen16", "sycamore54", "kings9x9"},
                   Depths,
                   Config.Full ? 2u : 1u,
                   60.0});
  // Sherbrooke-2X receives the 16x16 king's-graph circuits; QMAP's budget
  // is deliberately modest so the oversized device records the paper's
  // timeout behaviour.
  Grids.push_back({"sherbrooke2x",
                   {"kings16x16"},
                   Config.Full ? Depths : std::vector<unsigned>{100, 600},
                   1u,
                   20.0});
  return Grids;
}

void qlosure::bench::printBanner(const std::string &Name,
                                 const BenchConfig &Config) {
  std::printf("==================================================\n");
  std::printf("%s  [%s sweep, seed=%llu, verify=%s]\n", Name.c_str(),
              Config.Full ? "full" : "scaled-down",
              static_cast<unsigned long long>(Config.Seed),
              Config.Verify ? "on" : "off");
  std::printf("==================================================\n");
}
