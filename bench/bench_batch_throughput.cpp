//===- bench/bench_batch_throughput.cpp - BatchRunner scaling -------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the BatchRunner's wall-clock scaling on a QUEKO sweep: the
/// same (mapper x circuit) job list is executed with 1, 2, 4, ... worker
/// threads, results are checked for byte-identical aggregation, and the
/// speedup over the serial run is reported. On a >= 4-core machine the
/// 4-thread row should show >= 2x; a core-limited container will show the
/// thread counts without the speedup.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "eval/BatchRunner.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

/// Field-by-field record comparison (RunRecord has no operator==).
bool recordsEqual(const RunRecord &A, const RunRecord &B) {
  return A.Mapper == B.Mapper && A.Backend == B.Backend &&
         A.Workload == B.Workload && A.CircuitQubits == B.CircuitQubits &&
         A.QuantumOps == B.QuantumOps && A.TwoQubitGates == B.TwoQubitGates &&
         A.BaselineDepth == B.BaselineDepth && A.RoutedDepth == B.RoutedDepth &&
         A.Swaps == B.Swaps && A.TimedOut == B.TimedOut &&
         A.Failed == B.Failed && A.Error == B.Error;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("BatchRunner throughput (batch engine scaling)", Config);

  CouplingGraph Gen = makeAspen16();
  CouplingGraph Backend = makeBackendByName("sherbrooke");

  // A routing-dominated job list: QUEKO circuits routed by the greedy
  // mappers (QMAP's A* budget would swamp the comparison).
  std::vector<unsigned> Depths =
      Config.Full ? std::vector<unsigned>{100, 200, 300, 400}
                  : std::vector<unsigned>{60, 120, 180};
  unsigned PerDepth = Config.Full ? 4 : 3;

  std::vector<QuekoInstance> Instances;
  for (unsigned Depth : Depths) {
    for (unsigned I = 0; I < PerDepth; ++I) {
      QuekoSpec Spec;
      Spec.Depth = Depth;
      Spec.Seed = Config.Seed + Depth * 97 + I;
      QuekoInstance Inst = generateQueko(Gen, Spec);
      Inst.Circ.setName(formatString("queko-d%u-i%u", Depth, I));
      Instances.push_back(std::move(Inst));
    }
  }

  auto Mappers = makePaperMappers(/*QmapBudgetSeconds=*/60.0);
  std::vector<Router *> Greedy;
  for (auto &M : Mappers)
    if (M->name() != "QMAP")
      Greedy.push_back(M.get());

  std::vector<RoutingContext> Contexts;
  Contexts.reserve(Instances.size());
  for (const QuekoInstance &Inst : Instances)
    Contexts.push_back(RoutingContext::build(Inst.Circ, Backend));

  std::vector<BatchJob> Jobs;
  for (size_t I = 0; I < Instances.size(); ++I) {
    for (Router *Mapper : Greedy) {
      BatchJob Job;
      Job.Mapper = Mapper;
      Job.Ctx = &Contexts[I];
      Job.BaselineDepth = Instances[I].OptimalDepth;
      Job.Eval.Verify = Config.Verify;
      Jobs.push_back(Job);
    }
  }
  std::printf("\n%zu jobs (%zu circuits x %zu mappers) on %s; "
              "hardware reports %u cores\n",
              Jobs.size(), Instances.size(), Greedy.size(),
              Backend.name().c_str(), std::thread::hardware_concurrency());

  // Warm the lazily memoized context state (dependence weights) so every
  // timed run measures routing throughput, not first-touch effects.
  for (const RoutingContext &Ctx : Contexts)
    Ctx.dependenceWeights();

  std::vector<unsigned> ThreadCounts{1, 2, 4};
  unsigned HwThreads = std::max(1u, std::thread::hardware_concurrency());
  if (HwThreads > 4)
    ThreadCounts.push_back(HwThreads);

  Table T({"Threads", "Seconds", "Speedup vs serial", "Identical records"});
  double SerialSeconds = 0;
  std::vector<RunRecord> SerialRecords;
  for (unsigned Threads : ThreadCounts) {
    Timer Clock;
    std::vector<RunRecord> Records = runBatch(Jobs, Threads);
    double Seconds = Clock.elapsedSeconds();

    bool Identical = true;
    if (Threads == 1) {
      SerialSeconds = Seconds;
      SerialRecords = std::move(Records);
    } else {
      Identical = Records.size() == SerialRecords.size();
      for (size_t I = 0; Identical && I < Records.size(); ++I)
        Identical = recordsEqual(Records[I], SerialRecords[I]);
    }
    T.addRow({formatString("%u", Threads), formatString("%.3f", Seconds),
              Threads == 1 ? std::string("1.00x")
                           : formatString("%.2fx", SerialSeconds / Seconds),
              Identical ? "yes" : "NO (BUG)"});
    if (!Identical) {
      std::fprintf(stderr, "error: %u-thread records diverge from serial\n",
                   Threads);
      return 1;
    }
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nShape check: speedup should track min(threads, cores, "
              "jobs); every row must say 'yes'.\n");
  return 0;
}
