//===- bench/bench_fig2_excerpt.cpp - Fig. 2 reproduction -------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 2 of the paper: the motivating two-circuit excerpt.
/// (i) a 54-qubit QUEKO circuit (paper: initial depth 900, 9720 two-qubit
/// gates; scaled down by default) and (ii) an 18-qubit deep QASMBench-style
/// circuit (paper: depth 1429, 898 two-qubit gates), both mapped onto
/// Sherbrooke and Ankaa-3 by all five mappers. Reported metrics match the
/// figure: delta depth (final - initial) and SWAP count.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Fig. 2: mapper comparison excerpt", Config);

  // Circuit (i): QUEKO 54-qubit; the paper instance has depth 900 with
  // 9720 2Q gates (two-qubit density ~0.40).
  QuekoSpec Spec;
  Spec.Depth = Config.Full ? 900 : 300;
  Spec.TwoQubitDensity = 0.44;
  Spec.Seed = Config.Seed;
  QuekoInstance Queko = generateQueko(makeSycamore54(), Spec);
  Queko.Circ.setName("queko-54qbt");

  // Circuit (ii): 18-qubit deep variational circuit; layer count chosen so
  // the full version approaches the paper's depth 1429 / 898 2Q gates.
  Circuit Deep = makeQugan(18, Config.Full ? 53 : 18);
  Deep.setName("qugan_n18");

  struct Item {
    Circuit Circ;
    size_t InitialDepth;
  };
  std::vector<Item> Items;
  Items.push_back({Queko.Circ, Queko.Circ.depth()});
  Items.push_back({Deep, Deep.depth()});

  for (const char *Backend : {"sherbrooke", "ankaa3"}) {
    CouplingGraph Hw = makeBackendByName(Backend);
    for (const Item &It : Items) {
      std::printf("\nCircuit %s on %s (initial depth %zu, %zu 2Q gates)\n",
                  It.Circ.name().c_str(), Backend, It.InitialDepth,
                  It.Circ.numTwoQubitGates());
      Table T({"Mapper", "SWAPs", "Delta depth"});
      auto Mappers = makePaperMappers(120.0);
      for (auto &Mapper : Mappers) {
        EvalConfig Eval;
        Eval.Verify = Config.Verify;
        RunRecord R = runOnce(*Mapper, It.Circ, Hw, It.InitialDepth, Eval);
        T.addRow({R.Mapper, formatString("%zu", R.Swaps),
                  formatString("%zd", static_cast<ssize_t>(R.RoutedDepth) -
                                          static_cast<ssize_t>(
                                              It.InitialDepth))});
      }
      std::fputs(T.render().c_str(), stdout);
    }
  }
  std::printf("\nShape check: Qlosure should post the smallest SWAP count "
              "and delta depth\non both devices, as in Fig. 2.\n");
  return 0;
}
