//===- bench/BenchQasmBenchTable.h - Tables V/VI driver -----------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the QASMBench tables (Table V on Sherbrooke, Table VI
/// on Ankaa-3): per-circuit SWAPs and depth for every mapper on the
/// spotlight circuits, plus the all-suite average-improvement summary row
/// of the paper (computed as (VAL_baseline - VAL_Qlosure) / VAL_baseline).
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BENCH_BENCHQASMBENCHTABLE_H
#define QLOSURE_BENCH_BENCHQASMBENCHTABLE_H

#include <string>

namespace qlosure {
namespace bench {

/// Runs the table; returns the process exit code.
int runQasmBenchTable(int Argc, char **Argv, const std::string &BackendName,
                      const std::string &Title);

} // namespace bench
} // namespace qlosure

#endif // QLOSURE_BENCH_BENCHQASMBENCHTABLE_H
