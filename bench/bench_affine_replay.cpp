//===- bench/bench_affine_replay.cpp - Affine replay fast path ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Speedup and exactness harness for the affine replay fast path (PR 6):
/// structured loop workloads — a QFT-like kernel and a QUEKO-style
/// conveyor, both with loop depth well past 100 — are routed three ways
/// through the qlosure mapper (scalar unweighted profile, affine replay
/// cold, affine replay over the warmed plan cache), and an unstructured
/// QUEKO control measures the cost of asking for --affine on a circuit
/// with no loop structure.
///
/// Hard assertions (nonzero exit on violation):
///   - every affine result is gate-for-gate identical to the scalar one
///     and passes verifyRouting;
///   - on the structured workloads the warm pass replays at least one
///     period (the fast path demonstrably engages);
///   - the unstructured control detects no period and replays nothing.
///
/// Reported (BENCH_affine.json; the PR 6 acceptance bar is >= 5x warm
/// speedup on the structured workloads):
///   {
///     "bench": "affine_replay",
///     "all_identical": <bool>,
///     "workloads": [
///       { "name": <string>, "backend": <string>, "structured": <bool>,
///         "logical_gates": <int>, "depth": <int>,
///         "scalar_seconds": <float>,        // best of R scalar routes
///         "affine_cold_seconds": <float>,   // first route, records plans
///         "affine_warm_seconds": <float>,   // best of R warm routes
///         "speedup_warm": <float>,          // scalar / warm
///         "overhead_cold": <float>,         // cold / scalar - 1
///         "replayed_periods": <int>,        // warm pass
///         "fallback_periods": <int>,        // warm pass
///         "total_periods": <int>,           // detector's NumPeriods (0 =
///         "identical": <bool> }, ... ]      //   no structure detected)
///   }
///
/// --full enlarges the loop counts; --threads is accepted and ignored
/// (the comparison is inherently serial).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "affine/PeriodDetector.h"
#include "core/Qlosure.h"
#include "route/Verify.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"
#include "workloads/Structured.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

/// Gate-for-gate equality of two routing results.
bool resultsIdentical(const RoutingResult &A, const RoutingResult &B,
                      std::string &Why) {
  if (A.NumSwaps != B.NumSwaps) {
    Why = formatString("swap counts differ (%zu vs %zu)", A.NumSwaps,
                       B.NumSwaps);
    return false;
  }
  if (A.Routed.size() != B.Routed.size()) {
    Why = formatString("routed sizes differ (%zu vs %zu)", A.Routed.size(),
                       B.Routed.size());
    return false;
  }
  for (size_t I = 0; I < A.Routed.size(); ++I) {
    const Gate &GA = A.Routed.gate(I);
    const Gate &GB = B.Routed.gate(I);
    if (GA.Kind != GB.Kind || GA.Qubits != GB.Qubits ||
        GA.Params != GB.Params) {
      Why = formatString("gate %zu differs (%s vs %s)", I,
                         GA.toString().c_str(), GB.toString().c_str());
      return false;
    }
  }
  if (A.InsertedSwapFlags != B.InsertedSwapFlags) {
    Why = "inserted-swap flags differ";
    return false;
  }
  if (!(A.FinalMapping == B.FinalMapping)) {
    Why = "final mappings differ";
    return false;
  }
  return true;
}

struct WorkloadSpec {
  std::string Name;
  std::string BackendName;
  Circuit Circ;
  CouplingGraph Hw;
  bool Structured = false;
};

struct WorkloadRow {
  std::string Name;
  std::string BackendName;
  bool Structured = false;
  size_t LogicalGates = 0;
  unsigned Depth = 0;
  double ScalarSeconds = 0;
  double ColdSeconds = 0;
  double WarmSeconds = 0;
  size_t ReplayedPeriods = 0;
  size_t FallbackPeriods = 0;
  size_t TotalPeriods = 0;
  bool Identical = true;
};

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Affine replay fast path (scalar vs replayed periods)",
              Config);

  // Loop counts: the per-iteration body depths put every structured
  // workload's total depth far past 100 even in the default (CI) size.
  const int64_t QftReps = Config.Full ? 240 : 80;
  const int64_t ConveyorReps = Config.Full ? 120 : 48;
  const unsigned ControlDepth = Config.Full ? 300 : 120;

  std::vector<WorkloadSpec> Specs;
  // The line topology makes the kernel's wrap-around link maximally
  // non-local: every iteration pays a full swap chain, so the scalar
  // path spends its time scoring candidates — the work replay skips.
  Specs.push_back({"qft-kernel-24q", "line24", qftLikeKernel(24, QftReps),
                   makeLine(24), /*Structured=*/true});
  {
    CouplingGraph Grid = makeGrid(4, 4);
    Circuit Conveyor = layeredConveyor(Grid, 3, ConveyorReps, Config.Seed);
    Specs.push_back({"conveyor-grid4x4", "grid4x4", std::move(Conveyor),
                     std::move(Grid), /*Structured=*/true});
  }
  {
    // Unstructured control: QUEKO's per-cycle scramble never repeats, so
    // the detector must bail and the affine path must cost ~nothing.
    QuekoSpec Spec;
    Spec.Depth = ControlDepth;
    Spec.Seed = Config.Seed;
    QuekoInstance Control = generateQueko(makeAspen16(), Spec);
    Specs.push_back({formatString("queko-16qbt-d%u", ControlDepth),
                     "aspen16", std::move(Control.Circ), makeAspen16(),
                     /*Structured=*/false});
  }

  QlosureOptions ScalarOpts;
  ScalarOpts.UseDependencyWeights = false;
  ScalarOpts.Seed = Config.Seed;
  QlosureOptions FastOpts = ScalarOpts;
  FastOpts.AffineReplay = true;
  QlosureRouter ScalarRouter(ScalarOpts);
  QlosureRouter FastRouter(FastOpts);
  RoutingScratch Scratch;

  const unsigned Reps = 5;
  std::vector<WorkloadRow> Rows;
  bool AllIdentical = true;
  bool CoverageOk = true;

  for (const WorkloadSpec &Spec : Specs) {
    WorkloadRow Row;
    Row.Name = Spec.Name;
    Row.BackendName = Spec.BackendName;
    Row.Structured = Spec.Structured;
    Row.LogicalGates = Spec.Circ.size();
    Row.Depth = Spec.Circ.depth();

    RoutingContext Ctx = RoutingContext::build(Spec.Circ, Spec.Hw);
    if (!Ctx.valid()) {
      std::fprintf(stderr, "error: %s: %s\n", Spec.Name.c_str(),
                   Ctx.status().message().c_str());
      return 1;
    }
    if (const PeriodStructure *P = Ctx.periodStructure())
      Row.TotalPeriods = P->NumPeriods;

    // Affine cold: the first route over a fresh plan cache records the
    // period's swap schedule while routing. Detection itself was
    // memoized by the periodStructure() probe above, mirroring the
    // daemon, where cached contexts pay for lifting once per circuit.
    Timer ColdClock;
    RoutingResult ColdResult = FastRouter.routeWithIdentity(Ctx, Scratch);
    Row.ColdSeconds = ColdClock.elapsedSeconds();

    // Scalar and warm-affine passes interleaved, best of R each: the
    // sub-millisecond timings drift with clock scaling and scheduler
    // noise, and alternating the two paths exposes both to the same
    // drift instead of letting one phase soak it all up.
    RoutingResult ScalarResult, WarmResult;
    Row.ScalarSeconds = 1e100;
    Row.WarmSeconds = 1e100;
    for (unsigned R = 0; R < Reps; ++R) {
      Timer ScalarClock;
      ScalarResult = ScalarRouter.routeWithIdentity(Ctx, Scratch);
      Row.ScalarSeconds = std::min(Row.ScalarSeconds,
                                   ScalarClock.elapsedSeconds());
      Timer WarmClock;
      WarmResult = FastRouter.routeWithIdentity(Ctx, Scratch);
      Row.WarmSeconds = std::min(Row.WarmSeconds,
                                 WarmClock.elapsedSeconds());
      Row.ReplayedPeriods = WarmResult.AffineReplayedPeriods;
      Row.FallbackPeriods = WarmResult.AffineFallbackPeriods;
    }

    auto Check = [&](const RoutingResult &R, const char *Label) {
      std::string Why;
      if (!resultsIdentical(ScalarResult, R, Why)) {
        Row.Identical = false;
        AllIdentical = false;
        std::fprintf(stderr, "error: %s (%s) diverges from scalar: %s\n",
                     Spec.Name.c_str(), Label, Why.c_str());
      }
      if (Config.Verify) {
        VerifyResult V = verifyRouting(Ctx.circuit(), Ctx.hardware(), R);
        if (!V.Ok) {
          Row.Identical = false;
          AllIdentical = false;
          std::fprintf(stderr, "error: %s (%s) fails verification: %s\n",
                       Spec.Name.c_str(), Label, V.Message.c_str());
        }
      }
    };
    Check(ColdResult, "cold");
    Check(WarmResult, "warm");

    if (Spec.Structured && Row.ReplayedPeriods == 0) {
      CoverageOk = false;
      std::fprintf(stderr,
                   "error: %s is structured but the warm pass replayed "
                   "no periods\n",
                   Spec.Name.c_str());
    }
    if (!Spec.Structured &&
        (Row.TotalPeriods != 0 || Row.ReplayedPeriods != 0)) {
      CoverageOk = false;
      std::fprintf(stderr,
                   "error: %s is unstructured but the detector/replay "
                   "engaged (periods=%zu replayed=%zu)\n",
                   Spec.Name.c_str(), Row.TotalPeriods,
                   Row.ReplayedPeriods);
    }
    Rows.push_back(std::move(Row));
  }

  Table T({"Workload", "Backend", "Gates", "Depth", "Scalar s", "Cold s",
           "Warm s", "Speedup", "Replayed", "Fallback", "Identical"});
  for (const WorkloadRow &Row : Rows) {
    double Speedup =
        Row.WarmSeconds > 0 ? Row.ScalarSeconds / Row.WarmSeconds : 0;
    T.addRow({Row.Name, Row.BackendName,
              formatString("%zu", Row.LogicalGates),
              formatString("%u", Row.Depth),
              formatString("%.4f", Row.ScalarSeconds),
              formatString("%.4f", Row.ColdSeconds),
              formatString("%.4f", Row.WarmSeconds),
              formatString("%.2fx", Speedup),
              formatString("%zu/%zu", Row.ReplayedPeriods,
                           Row.TotalPeriods),
              formatString("%zu", Row.FallbackPeriods),
              Row.Identical ? "yes" : "NO (BUG)"});
  }
  std::fputs(T.render().c_str(), stdout);
  std::printf("\nShape check: every row must say 'yes', structured rows "
              "must replay periods, and the PR 6 bar is >= 5x warm "
              "speedup on the structured rows.\n");

  // See the file header for the JSON schema.
  {
    FILE *F = std::fopen("BENCH_affine.json", "w");
    if (!F) {
      std::fprintf(stderr, "error: cannot write BENCH_affine.json\n");
      return 1;
    }
    std::fprintf(F,
                 "{\n"
                 "  \"bench\": \"affine_replay\",\n"
                 "  \"all_identical\": %s,\n"
                 "  \"workloads\": [\n",
                 AllIdentical ? "true" : "false");
    for (size_t I = 0; I < Rows.size(); ++I) {
      const WorkloadRow &Row = Rows[I];
      double Speedup =
          Row.WarmSeconds > 0 ? Row.ScalarSeconds / Row.WarmSeconds : 0;
      double Overhead = Row.ScalarSeconds > 0
                            ? Row.ColdSeconds / Row.ScalarSeconds - 1.0
                            : 0;
      std::fprintf(
          F,
          "    { \"name\": \"%s\", \"backend\": \"%s\", "
          "\"structured\": %s,\n"
          "      \"logical_gates\": %zu, \"depth\": %u,\n"
          "      \"scalar_seconds\": %.6f,\n"
          "      \"affine_cold_seconds\": %.6f,\n"
          "      \"affine_warm_seconds\": %.6f,\n"
          "      \"speedup_warm\": %.3f,\n"
          "      \"overhead_cold\": %.3f,\n"
          "      \"replayed_periods\": %zu,\n"
          "      \"fallback_periods\": %zu,\n"
          "      \"total_periods\": %zu,\n"
          "      \"identical\": %s }%s\n",
          Row.Name.c_str(), Row.BackendName.c_str(),
          Row.Structured ? "true" : "false", Row.LogicalGates, Row.Depth,
          Row.ScalarSeconds, Row.ColdSeconds, Row.WarmSeconds, Speedup,
          Overhead, Row.ReplayedPeriods, Row.FallbackPeriods,
          Row.TotalPeriods, Row.Identical ? "true" : "false",
          I + 1 < Rows.size() ? "," : "");
    }
    std::fprintf(F, "  ]\n}\n");
    std::fclose(F);
    std::printf("wrote BENCH_affine.json\n");
  }

  return AllIdentical && CoverageOk ? 0 : 1;
}
