//===- bench/bench_table3_swap_ratio.cpp - Table III reproduction ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table III of the paper: per-mapper average SWAP-count ratio
/// relative to Qlosure on the QUEKO grids (values above 1.0 mean the
/// baseline inserts more SWAPs than Qlosure). The paper's headline: every
/// baseline is above 1.0 on every backend.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Table III: QUEKO SWAP ratio vs Qlosure (above 1.0 = worse)",
              Config);

  std::map<std::string,
           std::map<std::string, std::pair<double, double>>>
      Reference;
  Reference["sherbrooke"] = {{"SABRE", {1.17, 1.20}},
                             {"QMAP", {1.81, 1.85}},
                             {"Cirq", {1.20, 1.24}},
                             {"Pytket", {1.32, 1.29}}};
  Reference["ankaa3"] = {{"SABRE", {1.27, 1.29}},
                         {"QMAP", {2.14, 2.18}},
                         {"Cirq", {1.24, 1.26}},
                         {"Pytket", {1.23, 1.24}}};
  Reference["sherbrooke2x"] = {{"SABRE", {1.30, 1.31}},
                               {"Cirq", {1.08, 1.12}},
                               {"Pytket", {1.42, 1.37}}};

  bool AllAboveOne = true;
  for (const QuekoGridSpec &Grid : paperQuekoGrids(Config)) {
    std::vector<RunRecord> Records = runQuekoGrid(Grid, Config);
    auto Summary = swapRatioSummary(Records, "Qlosure");
    printMediumLargeTable("Backend: " + Grid.BackendName, Summary,
                          Reference[Grid.BackendName]);
    for (const auto &[Mapper, S] : Summary) {
      if (S.Medium > 0 && S.Medium < 0.98)
        AllAboveOne = false;
      if (S.Large > 0 && S.Large < 0.98)
        AllAboveOne = false;
    }
  }
  std::printf("\nShape check: all ratios at or above 1.0 (2%% tolerance) -> %s\n",
              AllAboveOne ? "PASS" : "MIXED");
  return 0;
}
