//===- bench/bench_table5_qasmbench_sherbrooke.cpp - Table V ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table V of the paper: QASMBench circuits on Sherbrooke —
/// per-circuit SWAPs/depth for all five mappers plus the suite-average
/// improvement row (run with --full for all 41 circuits).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchQasmBenchTable.h"

int main(int Argc, char **Argv) {
  return qlosure::bench::runQasmBenchTable(
      Argc, Argv, "sherbrooke",
      "Table V: QASMBench on Sherbrooke");
}
