//===- bench/bench_fig5_scalability.cpp - Fig. 5 reproduction ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 5 of the paper: Qlosure's mapping time as a function
/// of the number of quantum operations (QOPs) on the QUEKO 54-qubit set,
/// for the Sherbrooke, Ankaa-3 and Sherbrooke-2X backends. The paper's
/// claim is near-linear growth; we print the series and a least-squares
/// linearity diagnostic (R^2 of time vs QOPs).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/Qlosure.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <cmath>
#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

/// R^2 of the least-squares line through (X, Y).
double rSquared(const std::vector<double> &X, const std::vector<double> &Y) {
  size_t N = X.size();
  double SumX = 0, SumY = 0, SumXY = 0, SumXX = 0;
  for (size_t I = 0; I < N; ++I) {
    SumX += X[I];
    SumY += Y[I];
    SumXY += X[I] * Y[I];
    SumXX += X[I] * X[I];
  }
  double Den = N * SumXX - SumX * SumX;
  if (Den == 0)
    return 0;
  double Slope = (N * SumXY - SumX * SumY) / Den;
  double Intercept = (SumY - Slope * SumX) / N;
  double SsRes = 0, SsTot = 0;
  double MeanY = SumY / N;
  for (size_t I = 0; I < N; ++I) {
    double Fit = Slope * X[I] + Intercept;
    SsRes += (Y[I] - Fit) * (Y[I] - Fit);
    SsTot += (Y[I] - MeanY) * (Y[I] - MeanY);
  }
  return SsTot == 0 ? 1.0 : 1.0 - SsRes / SsTot;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Fig. 5: Qlosure mapping time vs quantum operations", Config);

  std::vector<unsigned> Depths =
      Config.Full
          ? std::vector<unsigned>{100, 200, 300, 400, 500, 600, 700, 800, 900}
          : std::vector<unsigned>{50, 100, 200, 300, 450, 600};

  for (const char *Backend : {"sherbrooke", "ankaa3", "sherbrooke2x"}) {
    CouplingGraph Hw = makeBackendByName(Backend);
    CouplingGraph Gen = makeSycamore54();
    std::printf("\nBackend: %s\n", Backend);
    Table T({"QOPs", "2Q gates", "Mapping seconds", "us per QOP"});
    std::vector<double> Xs, Ys;
    for (unsigned Depth : Depths) {
      QuekoSpec Spec;
      Spec.Depth = Depth;
      Spec.Seed = Config.Seed + Depth;
      QuekoInstance I = generateQueko(Gen, Spec);
      QlosureRouter Router;
      RoutingResult R = Router.routeWithIdentity(I.Circ, Hw);
      double Qops = static_cast<double>(I.Circ.numQuantumOps());
      Xs.push_back(Qops);
      Ys.push_back(R.MappingSeconds);
      T.addRow({formatString("%.0f", Qops),
                formatString("%zu", I.Circ.numTwoQubitGates()),
                formatString("%.4f", R.MappingSeconds),
                formatString("%.2f", R.MappingSeconds * 1e6 / Qops)});
    }
    std::fputs(T.render().c_str(), stdout);
    std::printf("linearity R^2(time ~ QOPs) = %.4f  (paper: near-linear)\n",
                rSquared(Xs, Ys));
  }
  return 0;
}
