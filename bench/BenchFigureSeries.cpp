//===- bench/BenchFigureSeries.cpp - Fig. 6/7 series driver -----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchFigureSeries.h"

#include "bench/BenchCommon.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <cstdio>
#include <map>

using namespace qlosure;
using namespace qlosure::bench;

int qlosure::bench::runFigureSeries(int Argc, char **Argv,
                                    const std::string &BackendName,
                                    const std::string &Title) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner(Title, Config);

  std::vector<unsigned> Depths =
      Config.Full
          ? std::vector<unsigned>{100, 200, 300, 500, 700, 900}
          : std::vector<unsigned>{60, 150, 300};

  struct SetSpec {
    const char *Label;
    const char *GenName;
  };
  const SetSpec Sets[] = {{"queko-bss-16qbt (narrow)", "aspen16"},
                          {"queko-bss-54qbt (medium)", "sycamore54"},
                          {"queko-bss-81qbt (wide)", "kings9x9"}};

  const char *Order[] = {"SABRE", "QMAP", "Cirq", "Pytket", "Qlosure"};
  for (const SetSpec &Set : Sets) {
    QuekoGridSpec Grid;
    Grid.BackendName = BackendName;
    Grid.GenNames = {Set.GenName};
    Grid.Depths = Depths;
    Grid.CircuitsPerDepth = 1;
    Grid.QmapBudgetSeconds = 60.0;
    std::vector<RunRecord> Records = runQuekoGrid(Grid, Config);

    // Index: depth -> mapper -> record.
    std::map<unsigned, std::map<std::string, const RunRecord *>> Series;
    for (const RunRecord &R : Records)
      Series[static_cast<unsigned>(R.BaselineDepth)][R.Mapper] = &R;

    std::printf("\n%s on %s\n", Set.Label, BackendName.c_str());
    std::vector<std::string> Header{"Initial depth"};
    for (const char *M : Order)
      Header.push_back(std::string(M) + " swaps");
    for (const char *M : Order)
      Header.push_back(std::string(M) + " depth");
    Table T(Header);
    for (auto &[Depth, PerMapper] : Series) {
      std::vector<std::string> Row{formatString("%u", Depth)};
      for (const char *M : Order) {
        auto It = PerMapper.find(M);
        Row.push_back(It == PerMapper.end() || It->second->TimedOut
                          ? "-"
                          : formatString("%zu", It->second->Swaps));
      }
      for (const char *M : Order) {
        auto It = PerMapper.find(M);
        Row.push_back(It == PerMapper.end() || It->second->TimedOut
                          ? "-"
                          : formatString("%zu", It->second->RoutedDepth));
      }
      T.addRow(std::move(Row));
    }
    std::fputs(T.render().c_str(), stdout);
  }
  std::printf("\nShape check: Qlosure's swap and depth columns should sit "
              "below every baseline,\nwith the margin widening on the "
              "81-qubit (wide) set, as in the paper.\n");
  return 0;
}
