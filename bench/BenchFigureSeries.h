//===- bench/BenchFigureSeries.h - Fig. 6/7 series driver ---------*- C++ -*-===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared driver for the per-depth QUEKO series figures (Fig. 6 on
/// Sherbrooke, Fig. 7 on Ankaa-3): for each dataset (16/54/81 qubits) and
/// each initial depth, print every mapper's SWAP count and routed depth.
///
//===----------------------------------------------------------------------===//

#ifndef QLOSURE_BENCH_BENCHFIGURESERIES_H
#define QLOSURE_BENCH_BENCHFIGURESERIES_H

#include <string>

namespace qlosure {
namespace bench {

/// Runs the figure; returns the process exit code.
int runFigureSeries(int Argc, char **Argv, const std::string &BackendName,
                    const std::string &Title);

} // namespace bench
} // namespace qlosure

#endif // QLOSURE_BENCH_BENCHFIGURESERIES_H
