//===- bench/bench_fig8_ablation.cpp - Fig. 8 reproduction ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Fig. 8 of the paper: the ablation study of the Qlosure cost
/// function on queko-bss-81qbt circuits mapped to Sherbrooke. Variants:
///
///   a) Distance-only      — Manhattan distance on the front layer only.
///   b) Layer-adjusted     — adds the dependence-distance layers with the
///                           1/l discount and 1/|G_l| normalization.
///   c) Dependency-weighted— adds the transitive-dependence weights omega
///                           (the full Qlosure cost, Eq. 2).
///   d) Bidirectional      — (c) plus a forward/backward derived initial
///                           placement (Sec. VI-E).
///
/// Prints SWAPs/depth per initial depth and each variant's average
/// improvement over (a), mirroring the paper's 5.6%/46.8%/72.2% swap
/// reduction ladder.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"

#include "core/Qlosure.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <cstdio>

using namespace qlosure;
using namespace qlosure::bench;

namespace {

struct VariantResult {
  size_t Swaps = 0;
  size_t Depth = 0;
};

QlosureOptions variantOptions(int Variant) {
  QlosureOptions Opts;
  switch (Variant) {
  case 0: // Distance-only: the paper's (a) uses *only* the qubit distance
          // in swap choices — no layers, no omega, no decay damping.
    Opts.UseLayerStructure = false;
    Opts.UseDependencyWeights = false;
    Opts.DecayIncrement = 0.0;
    break;
  case 1: // Layer-adjusted.
    Opts.UseLayerStructure = true;
    Opts.UseDependencyWeights = false;
    break;
  default: // Dependency-weighted (full) and bidirectional.
    break;
  }
  return Opts;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchConfig Config = parseArgs(Argc, Argv);
  printBanner("Fig. 8: cost-function ablation (queko-bss-81qbt on "
              "Sherbrooke)",
              Config);

  CouplingGraph Gen = makeKings9x9();
  CouplingGraph Hw = makeSherbrooke();
  std::vector<unsigned> Depths =
      Config.Full ? std::vector<unsigned>{100, 200, 300, 500, 700, 900}
                  : std::vector<unsigned>{120, 240, 400};

  const char *VariantNames[] = {"Distance-only", "Layer-adjusted",
                                "Dependency-weighted", "Bidirectional"};

  std::vector<std::string> Header{"Initial depth"};
  for (const char *V : VariantNames) {
    Header.push_back(std::string(V) + " swaps");
    Header.push_back(std::string(V) + " depth");
  }
  Table T(Header);

  // Relative improvements vs the distance-only baseline, per instance.
  std::vector<double> SwapGain[4], DepthGain[4];

  for (unsigned Depth : Depths) {
    QuekoSpec Spec;
    Spec.Depth = Depth;
    Spec.Seed = Config.Seed + Depth;
    QuekoInstance I = generateQueko(Gen, Spec);

    // One shared context: all four variants reuse the same DAG, distance
    // matrix and (for the weighted variants) memoized omega weights.
    RoutingContext Ctx = RoutingContext::build(I.Circ, Hw);

    VariantResult Results[4];
    for (int V = 0; V < 4; ++V) {
      QlosureRouter Router(variantOptions(V));
      RoutingResult R;
      if (V == 3) {
        QubitMapping Initial = deriveBidirectionalMapping(Router, Ctx);
        R = Router.route(Ctx, Initial);
      } else {
        R = Router.routeWithIdentity(Ctx);
      }
      if (Config.Verify) {
        VerifyResult Check = verifyRouting(I.Circ, Hw, R);
        if (!Check.Ok)
          reportFatalError("ablation routing failed verification: " +
                           Check.Message);
      }
      Results[V] = {R.NumSwaps, R.Routed.depth()};
    }
    std::vector<std::string> Row{formatString("%u", Depth)};
    for (int V = 0; V < 4; ++V) {
      Row.push_back(formatString("%zu", Results[V].Swaps));
      Row.push_back(formatString("%zu", Results[V].Depth));
      double Base = static_cast<double>(Results[0].Swaps);
      double BaseDepth = static_cast<double>(Results[0].Depth);
      SwapGain[V].push_back(
          (Base - static_cast<double>(Results[V].Swaps)) / Base);
      DepthGain[V].push_back(
          (BaseDepth - static_cast<double>(Results[V].Depth)) / BaseDepth);
    }
    T.addRow(std::move(Row));
  }
  std::fputs(T.render().c_str(), stdout);

  Table Gains({"Variant", "Swap reduction vs (a)", "Depth reduction vs (a)",
               "Paper swaps", "Paper depth"});
  const char *PaperSwaps[] = {"0%", "5.6%", "46.8%", "72.2%"};
  const char *PaperDepth[] = {"0%", "5.9%", "48.7%", "76.8%"};
  for (int V = 0; V < 4; ++V)
    Gains.addRow({VariantNames[V],
                  formatString("%.1f%%", 100 * mean(SwapGain[V])),
                  formatString("%.1f%%", 100 * mean(DepthGain[V])),
                  PaperSwaps[V], PaperDepth[V]});
  std::printf("\nAverage improvement relative to the distance-only "
              "baseline\n");
  std::fputs(Gains.render().c_str(), stdout);
  std::printf("\nShape check: improvements must increase monotonically "
              "(a) -> (d), with the\nbulk arriving at the "
              "dependency-weighted step, as in the paper.\n");
  return 0;
}
