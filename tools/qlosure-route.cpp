//===- tools/qlosure-route.cpp - Command-line qubit mapper ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The command-line driver: reads an OpenQASM 2.0 circuit, routes it onto
/// a chosen backend with a chosen mapper, verifies the result, reports
/// statistics and writes the routed program.
///
///   qlosure-route [options] [input.qasm]       (stdin when omitted)
///     --backend NAME     sherbrooke | ankaa3 | sherbrooke2x | kings9x9 |
///                        kings16x16 | aspen16 | sycamore54  (default:
///                        sherbrooke)
///     --mapper NAME      qlosure | sabre | qmap | cirq | tket
///     --bidirectional    derive the initial placement with a forward/
///                        backward pass (Qlosure/SABRE-style)
///     --error-aware      error-aware mode with a synthetic calibration
///     --calibration N    calibration seed for --error-aware (default 1)
///     --output FILE      routed QASM destination (default stdout)
///     --stats-only       print statistics, skip the routed program
///     --json             print machine-readable stats to stdout using the
///                        same schema as the qlosured `route` response
///                        "stats" object (docs/PROTOCOL.md); the routed
///                        program is then only written with --output FILE
///
/// Exits nonzero when the routed circuit fails independent verification
/// (with --json, the stats object is still printed, with
/// "verified": false).
///
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/Fidelity.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "service/Protocol.h"
#include "topology/Backends.h"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>

using namespace qlosure;

namespace {

struct ToolOptions {
  std::string Backend = "sherbrooke";
  std::string Mapper = "qlosure";
  std::string InputPath;  // Empty = stdin.
  std::string OutputPath; // Empty = stdout.
  bool Bidirectional = false;
  bool ErrorAware = false;
  uint64_t CalibrationSeed = 1;
  bool StatsOnly = false;
  bool Json = false;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--backend NAME] [--mapper NAME] "
               "[--bidirectional] [--error-aware] [--calibration N] "
               "[--output FILE] [--stats-only] [--json] [input.qasm]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions Opts;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--backend") && I + 1 < Argc) {
      Opts.Backend = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--mapper") && I + 1 < Argc) {
      Opts.Mapper = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--output") && I + 1 < Argc) {
      Opts.OutputPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--calibration") && I + 1 < Argc) {
      Opts.CalibrationSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--bidirectional")) {
      Opts.Bidirectional = true;
    } else if (!std::strcmp(Argv[I], "--error-aware")) {
      Opts.ErrorAware = true;
    } else if (!std::strcmp(Argv[I], "--stats-only")) {
      Opts.StatsOnly = true;
    } else if (!std::strcmp(Argv[I], "--json")) {
      Opts.Json = true;
    } else if (Argv[I][0] == '-') {
      return usage(Argv[0]);
    } else {
      Opts.InputPath = Argv[I];
    }
  }

  // Read the program.
  std::string Source;
  if (Opts.InputPath.empty()) {
    std::ostringstream Buffer;
    Buffer << std::cin.rdbuf();
    Source = Buffer.str();
  } else {
    std::ifstream In(Opts.InputPath);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n",
                   Opts.InputPath.c_str());
      return 1;
    }
    Source.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  }

  qasm::ImportResult Imported = qasm::importQasm(Source, "input");
  if (!Imported.succeeded()) {
    std::fprintf(stderr, "error: %s\n", Imported.Error.c_str());
    return 1;
  }
  Circuit Logical =
      Imported.Circ->withoutNonUnitaries().decomposeThreeQubitGates();

  CouplingGraph Device = makeBackendByName(Opts.Backend);
  if (Logical.numQubits() > Device.numQubits()) {
    std::fprintf(stderr,
                 "error: circuit has %u qubits but %s only has %u\n",
                 Logical.numQubits(), Opts.Backend.c_str(),
                 Device.numQubits());
    return 1;
  }
  if (Opts.ErrorAware)
    applySyntheticErrorModel(Device, Opts.CalibrationSeed);

  std::unique_ptr<Router> Mapper;
  if (Opts.Mapper == "qlosure") {
    QlosureOptions QOpts;
    QOpts.ErrorAware = Opts.ErrorAware;
    Mapper = std::make_unique<QlosureRouter>(QOpts);
  } else {
    Mapper = makeRouterByName(Opts.Mapper);
  }

  // One context carries every precomputed structure (distances, DAG,
  // dependence weights) through the bidirectional passes and the final
  // routing; malformed inputs surface here as a diagnostic, not an abort.
  RoutingContext Ctx =
      RoutingContext::build(Logical, Device, Mapper->contextOptions());
  if (!Ctx.valid()) {
    std::fprintf(stderr, "error: %s\n", Ctx.status().message().c_str());
    return 1;
  }
  QubitMapping Initial = Opts.Bidirectional
                             ? deriveBidirectionalMapping(*Mapper, Ctx)
                             : Ctx.identityMapping();
  RoutingResult Result = Mapper->route(Ctx, Initial);
  VerifyResult Check = verifyRouting(Logical, Device, Result);

  if (Opts.Json) {
    // The shared stats schema of the service protocol, so scripts consume
    // qlosure-route and qlosured responses uniformly.
    service::RouteStats Stats;
    Stats.LogicalGates = Logical.size();
    Stats.RoutedGates = Result.Routed.size();
    Stats.Swaps = Result.NumSwaps;
    Stats.DepthBefore = Logical.depth();
    Stats.DepthAfter = Result.Routed.depth();
    Stats.MappingSeconds = Result.MappingSeconds;
    Stats.TimedOut = Result.TimedOut;
    Stats.Verified = Check.Ok;
    if (Opts.ErrorAware)
      Stats.SuccessProbability =
          estimateSuccessProbability(Result.Routed, Device);
    json::Value Doc = json::Value::object();
    Doc.set("tool", "qlosure-route");
    Doc.set("mapper", Mapper->name());
    Doc.set("backend", Opts.Backend);
    Doc.set("circuit", Logical.name());
    Doc.set("stats", service::routeStatsToJson(Stats));
    std::printf("%s\n", Doc.dump().c_str());
  }

  if (!Check.Ok) {
    std::fprintf(stderr, "internal error: routing failed verification: %s\n",
                 Check.Message.c_str());
    return 1;
  }

  if (!Opts.Json) {
    std::fprintf(stderr,
                 "qlosure-route: %s on %s: %zu gates -> %zu (%zu SWAPs), "
                 "depth %zu -> %zu, %.3f ms%s\n",
                 Mapper->name().c_str(), Opts.Backend.c_str(),
                 Logical.size(), Result.Routed.size(), Result.NumSwaps,
                 Logical.depth(), Result.Routed.depth(),
                 Result.MappingSeconds * 1000,
                 Result.TimedOut ? " (search budget hit)" : "");
    if (Opts.ErrorAware)
      std::fprintf(stderr,
                   "qlosure-route: estimated success probability %.4g\n",
                   estimateSuccessProbability(Result.Routed, Device));
  }

  if (!Opts.StatsOnly && !(Opts.Json && Opts.OutputPath.empty())) {
    std::string Text = qasm::printQasm(Result.Routed);
    if (Opts.OutputPath.empty()) {
      std::fputs(Text.c_str(), stdout);
    } else {
      std::ofstream Out(Opts.OutputPath);
      if (!Out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     Opts.OutputPath.c_str());
        return 1;
      }
      Out << Text;
    }
  }
  return 0;
}
