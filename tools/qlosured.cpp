//===- tools/qlosured.cpp - The persistent mapping daemon ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The qlosured daemon: serves the newline-delimited JSON mapping protocol
/// (docs/PROTOCOL.md) over a Unix-domain or TCP socket, amortizing
/// per-(circuit, backend) precomputation and routed results across
/// requests via the sharded service caches.
///
///   qlosured --listen ADDR [options]
///     --listen ADDR        unix:/path, tcp:host:port (port 0 = ephemeral),
///                          or a bare socket path (required)
///     --socket PATH        backward-compatible alias for --listen unix:PATH
///     --workers N          scheduler worker threads (default: cores)
///     --queue N            bounded queue capacity (default 256)
///     --cache-mb N         context cache byte budget in MiB (default 256)
///     --result-cache-mb N  result cache byte budget in MiB (default 64)
///     --shards N           cache shard count (default 8)
///     --timeout SECONDS    default per-request deadline (default 60; 0
///                          disables)
///     --log-level LEVEL    structured JSON logging threshold: debug,
///                          info, warn, error, off (default off)
///     --log-file PATH      log sink (appended); default stderr
///     --slow-ms N          warn-level "slow_request" log line for any
///                          request at or over N milliseconds (includes
///                          the trace when the request opted in); 0
///                          disables (default)
///     --store PATH         durable result store: append-only log of
///                          routed results backing the in-memory result
///                          cache; recovered (torn tails truncated,
///                          corrupt records skipped) on startup
///     --store-read-only    open the store read-only (share another
///                          daemon's store; never writes or compacts)
///     --store-fsync-kb N   fsync after N KiB of appended records
///                          (default 1024; 0 = fsync every append)
///
/// Prints "qlosured: listening on ADDR" once ready (the resolved address —
/// for tcp port 0, the kernel-assigned port). SIGINT/SIGTERM (or a client
/// `shutdown` request) shut down gracefully: in-flight requests finish,
/// every connection gets its response, a unix socket file is unlinked.
///
//===----------------------------------------------------------------------===//

#include "service/Server.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace qlosure;
using namespace qlosure::service;

namespace {

volatile std::sig_atomic_t SignalStop = 0;

void onSignal(int) { SignalStop = 1; }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --listen ADDR [--workers N] [--queue N] "
               "[--cache-mb N] [--result-cache-mb N] [--shards N] "
               "[--timeout SECONDS] [--log-level LEVEL] [--log-file PATH] "
               "[--slow-ms N] [--store PATH] [--store-read-only] "
               "[--store-fsync-kb N]\n"
               "  ADDR is unix:/path, tcp:host:port, or a bare socket path\n"
               "  (--socket PATH remains as an alias for --listen unix:PATH)\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  ServerOptions Opts;
  log::Level LogLevel = log::Level::Off;
  std::string LogFile;
  for (int I = 1; I < Argc; ++I) {
    if ((!std::strcmp(Argv[I], "--listen") ||
         !std::strcmp(Argv[I], "--socket")) &&
        I + 1 < Argc) {
      Opts.Listen = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--workers") && I + 1 < Argc) {
      Opts.Workers = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--queue") && I + 1 < Argc) {
      Opts.QueueCapacity = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--cache-mb") && I + 1 < Argc) {
      Opts.ContextCacheBytes =
          std::strtoull(Argv[++I], nullptr, 10) << 20;
    } else if (!std::strcmp(Argv[I], "--result-cache-mb") && I + 1 < Argc) {
      Opts.ResultCacheBytes = std::strtoull(Argv[++I], nullptr, 10) << 20;
    } else if (!std::strcmp(Argv[I], "--shards") && I + 1 < Argc) {
      Opts.CacheShards = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--timeout") && I + 1 < Argc) {
      Opts.DefaultTimeoutSeconds = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--log-level") && I + 1 < Argc) {
      if (!log::parseLevel(Argv[++I], LogLevel)) {
        std::fprintf(stderr, "qlosured: unknown log level \"%s\"\n", Argv[I]);
        return usage(Argv[0]);
      }
    } else if (!std::strcmp(Argv[I], "--log-file") && I + 1 < Argc) {
      LogFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--slow-ms") && I + 1 < Argc) {
      Opts.SlowRequestMs = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--store") && I + 1 < Argc) {
      Opts.StorePath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--store-read-only")) {
      Opts.StoreReadOnly = true;
    } else if (!std::strcmp(Argv[I], "--store-fsync-kb") && I + 1 < Argc) {
      Opts.StoreFsyncBytes = std::strtoull(Argv[++I], nullptr, 10) << 10;
    } else {
      return usage(Argv[0]);
    }
  }
  if (Opts.Listen.empty())
    return usage(Argv[0]);
  if (!log::configure(LogLevel, LogFile)) {
    std::fprintf(stderr, "qlosured: cannot open log file %s\n",
                 LogFile.c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  Server Daemon(Opts);
  Status Started = Daemon.start();
  if (!Started.ok()) {
    std::fprintf(stderr, "qlosured: error: %s\n",
                 Started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "qlosured: listening on %s\n",
               Daemon.boundAddress().c_str());
  std::fflush(stderr);

  Daemon.wait([] { return SignalStop != 0; });
  std::fprintf(stderr, "qlosured: shut down cleanly\n");
  return 0;
}
