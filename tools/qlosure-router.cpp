//===- tools/qlosure-router.cpp - Consistent-hash fleet router -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet front daemon: speaks protocol v2 to clients on --listen and
/// consistent-hash shards route/batch requests by circuit fingerprint
/// across the qlosured daemons named by --shard (service/ShardRouter.h
/// has the full semantics).
///
///   qlosure-router --listen ADDR --shard ADDR [--shard ADDR ...]
///     --listen ADDR            client-facing address: unix:/path,
///                              tcp:host:port (port 0 = ephemeral), or a
///                              bare socket path (required)
///     --shard ADDR             one backend qlosured address per use
///                              (at least one required)
///     --metrics ADDR           optional plain-HTTP listener serving
///                              GET /metrics (Prometheus text)
///     --virtual-nodes N        ring points per shard (default 64)
///     --health-interval-ms N   live-shard ping cadence (default 500)
///     --retries N              queue_full retries per request (default 8)
///     --log-level LEVEL        structured JSON logging threshold: debug,
///                              info, warn, error, off (default off)
///     --log-file PATH          log sink (appended); default stderr
///     --slow-ms N              warn-level "slow_request" line for any
///                              id-tracked forward at or over N ms of
///                              arrival-to-final latency; 0 disables
///
/// Prints "qlosure-router: listening on ADDR" (and the metrics address
/// when enabled) once ready. SIGINT/SIGTERM or a client `shutdown` stop
/// the router; the shard daemons are never owned and keep running.
///
//===----------------------------------------------------------------------===//

#include "service/ShardRouter.h"
#include "support/Log.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace qlosure;
using namespace qlosure::service;

namespace {

volatile std::sig_atomic_t SignalStop = 0;

void onSignal(int) { SignalStop = 1; }

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s --listen ADDR --shard ADDR [--shard ADDR ...]\n"
               "          [--metrics ADDR] [--virtual-nodes N]\n"
               "          [--health-interval-ms N] [--retries N]\n"
               "          [--log-level LEVEL] [--log-file PATH] [--slow-ms N]\n"
               "  every ADDR is unix:/path, tcp:host:port, or a bare path\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  RouterOptions Opts;
  log::Level LogLevel = log::Level::Off;
  std::string LogFile;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--listen") && I + 1 < Argc) {
      Opts.Listen = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--shard") && I + 1 < Argc) {
      Opts.Shards.push_back(Argv[++I]);
    } else if (!std::strcmp(Argv[I], "--metrics") && I + 1 < Argc) {
      Opts.MetricsListen = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--virtual-nodes") && I + 1 < Argc) {
      Opts.VirtualNodes =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--health-interval-ms") && I + 1 < Argc) {
      Opts.HealthIntervalMs =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--retries") && I + 1 < Argc) {
      Opts.MaxRetries =
          static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--log-level") && I + 1 < Argc) {
      if (!log::parseLevel(Argv[++I], LogLevel)) {
        std::fprintf(stderr, "qlosure-router: unknown log level \"%s\"\n",
                     Argv[I]);
        return usage(Argv[0]);
      }
    } else if (!std::strcmp(Argv[I], "--log-file") && I + 1 < Argc) {
      LogFile = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--slow-ms") && I + 1 < Argc) {
      Opts.SlowRequestMs = std::strtod(Argv[++I], nullptr);
    } else {
      return usage(Argv[0]);
    }
  }
  if (Opts.Listen.empty() || Opts.Shards.empty())
    return usage(Argv[0]);
  if (!log::configure(LogLevel, LogFile)) {
    std::fprintf(stderr, "qlosure-router: cannot open log file %s\n",
                 LogFile.c_str());
    return 1;
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  RouterServer Router(Opts);
  Status Started = Router.start();
  if (!Started.ok()) {
    std::fprintf(stderr, "qlosure-router: error: %s\n",
                 Started.message().c_str());
    return 1;
  }
  std::fprintf(stderr, "qlosure-router: listening on %s (%zu shards)\n",
               Router.boundAddress().c_str(), Opts.Shards.size());
  if (!Router.metricsBoundAddress().empty())
    std::fprintf(stderr, "qlosure-router: metrics on %s\n",
                 Router.metricsBoundAddress().c_str());
  std::fflush(stderr);

  Router.wait([] { return SignalStop != 0; });
  std::fprintf(stderr, "qlosure-router: shut down cleanly\n");
  return 0;
}
