//===- tools/qlosure-queko.cpp - QUEKO instance generator ----------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates one QUEKO benchmark circuit (Tan & Cong: known-optimal-depth
/// layout-synthesis instances; src/workloads/Queko.h) as OpenQASM 2.0, so
/// scripts, smoke tests and load generators can create circuits of any
/// size on the fly instead of committing megabytes of QASM:
///
///   qlosure-queko [--device NAME] [--depth N] [--seed N]
///                 [--two-qubit-density F] [--one-qubit-density F]
///                 [--output FILE]
///
///   --device NAME   generation device (any qlosure-route backend name;
///                   default sycamore54). The instance's optimal depth is
///                   provable on this device.
///   --depth N       optimal depth to pin (default 100)
///   --seed N        generation seed (default 1)
///   --output FILE   write QASM to FILE instead of stdout
///
/// The optimal depth is emitted as a trailing "// optimal_depth N"
/// comment on stderr for scripts that want the ground truth.
///
//===----------------------------------------------------------------------===//

#include "qasm/Printer.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

using namespace qlosure;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--device NAME] [--depth N] [--seed N] "
               "[--two-qubit-density F] [--one-qubit-density F] "
               "[--output FILE]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Device = "sycamore54";
  std::string OutputPath;
  QuekoSpec Spec;

  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--device") && I + 1 < Argc) {
      Device = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--depth") && I + 1 < Argc) {
      Spec.Depth = static_cast<unsigned>(std::strtoul(Argv[++I], nullptr, 10));
    } else if (!std::strcmp(Argv[I], "--seed") && I + 1 < Argc) {
      Spec.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--two-qubit-density") && I + 1 < Argc) {
      Spec.TwoQubitDensity = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--one-qubit-density") && I + 1 < Argc) {
      Spec.OneQubitDensity = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--output") && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else {
      return usage(Argv[0]);
    }
  }
  if (Spec.Depth == 0)
    return usage(Argv[0]);

  CouplingGraph GenDevice = makeBackendByName(Device);
  QuekoInstance Inst = generateQueko(GenDevice, Spec);
  std::string Qasm = qasm::printQasm(Inst.Circ);

  if (OutputPath.empty()) {
    std::fputs(Qasm.c_str(), stdout);
  } else {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "qlosure-queko: error: cannot write %s\n",
                   OutputPath.c_str());
      return 2;
    }
    Out << Qasm;
  }
  std::fprintf(stderr, "// optimal_depth %u\n", Inst.OptimalDepth);
  return 0;
}
