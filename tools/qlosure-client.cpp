//===- tools/qlosure-client.cpp - Blocking qlosured client ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Script-friendly client for the qlosured daemon or the fleet router
/// (docs/PROTOCOL.md):
///
///   qlosure-client [--connect ADDR] [--connect-timeout SEC] COMMAND ...
///     ADDR is unix:/path, tcp:host:port, or a bare socket path
///     (--socket PATH remains as a backward-compatible alias)
///     ping                          liveness probe
///     stats                         print the server stats document
///                                   (raw JSON on stdout; a short human
///                                   summary incl. the affine replay
///                                   counters on stderr)
///       --watch N                   re-poll every N seconds forever,
///                                   printing one delta line per interval
///                                   to stderr (requests/s and the result
///                                   cache hit rate over the interval);
///                                   stdout still carries each raw
///                                   document, one JSON line per poll
///     metrics                       print the Prometheus text exposition
///                                   (the same counters as stats)
///     shutdown                      ask the daemon to stop gracefully
///     batch [opts] DIR              route every *.qasm in DIR (sorted) as
///                                   one `batch` session: item results
///                                   stream to stderr as they complete,
///                                   the final summary (always last)
///                                   prints to stdout, and the exit code
///                                   reports per-item outcomes. Shares
///                                   the route options below (one mapper
///                                   × one backend per batch; id defaults
///                                   to "b1")
///     route [opts] [input.qasm]     route a circuit (stdin when omitted)
///       --mapper NAME               qlosure | sabre | qmap | cirq | tket
///       --backend NAME              see qlosure-route --backend
///       --bidirectional             derived initial placement
///       --error-aware               synthetic-calibration error-aware mode
///       --affine                    affine replay fast path (periodic
///                                   circuits reuse the first iteration's
///                                   swap schedule; exact fallback)
///       --calibration N             calibration seed (default 1)
///       --timeout-ms N              per-request deadline override
///       --stats-only                do not request the routed program
///       --output FILE               write the routed QASM to FILE
///       --qasm-only                 print the routed QASM instead of JSON
///       --expect-cache-hit          exit 4 unless the response says
///                                   cache_hit (CI smoke assertion)
///       --id STR                    correlation id (default "r1" when a
///                                   v2 feature below needs one)
///       --progress                  stream progress events to stderr
///       --trace                     request per-phase tracing; the final
///                                   response carries a "trace" section
///                                   and an indented span tree prints to
///                                   stderr
///       --cancel-after-ms N         send a `cancel` for this route N ms
///                                   after submitting it (client-side
///                                   abort; the printed final response is
///                                   then normally the `cancelled` error)
///
/// Prints the raw JSON final response line to stdout (except
/// --qasm-only); progress events, batch item frames, and the cancel ack
/// go to stderr. The client demultiplexes protocol-v2 frames, so
/// responses are matched by (op, id) rather than arrival order.
/// Exit codes: 0 ok (for `batch`: every item succeeded), 1 server-side
/// error response or any failed/cancelled batch item, 2 usage, 3
/// transport failure, 4 --expect-cache-hit violated.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Protocol.h"
#include "support/Json.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace qlosure;
using namespace qlosure::service;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--connect ADDR] [--connect-timeout SEC] "
      "(ping|stats|metrics|shutdown|route [route-options] [input.qasm]|"
      "batch [route-options] DIR)\n"
      "  ADDR is unix:/path, tcp:host:port, or a bare socket path\n",
      Argv0);
  return 2;
}

int transportError(const Status &S) {
  std::fprintf(stderr, "qlosure-client: error: %s\n", S.message().c_str());
  return 3;
}

/// Renders the response's "trace" section as an indented span tree on
/// stderr (depth → indent; offsets and durations in milliseconds).
void printTrace(const json::Value &Response) {
  const json::Value *TraceObj = Response.get("trace");
  if (!TraceObj || !TraceObj->isObject())
    return;
  const json::Value *TraceId = TraceObj->get("trace_id");
  std::fprintf(stderr, "trace %s:\n",
               TraceId && TraceId->isString() ? TraceId->asString().c_str()
                                              : "?");
  const json::Value *Spans = TraceObj->get("spans");
  if (!Spans || !Spans->isArray())
    return;
  for (const json::Value &Span : Spans->items()) {
    if (!Span.isObject())
      continue;
    const json::Value *Name = Span.get("name");
    const json::Value *Start = Span.get("start_us");
    const json::Value *Dur = Span.get("dur_us");
    const json::Value *Depth = Span.get("depth");
    int Indent = Depth && Depth->isNumber()
                     ? static_cast<int>(Depth->asNumber())
                     : 0;
    std::fprintf(stderr, "  %*s%-20s +%.3fms %.3fms\n", Indent * 2, "",
                 Name && Name->isString() ? Name->asString().c_str() : "?",
                 Start && Start->isNumber() ? Start->asNumber() / 1000.0
                                            : 0.0,
                 Dur && Dur->isNumber() ? Dur->asNumber() / 1000.0 : 0.0);
  }
  if (const json::Value *Dropped = TraceObj->get("dropped_spans");
      Dropped && Dropped->isNumber())
    std::fprintf(stderr, "  (%lld spans dropped)\n",
                 static_cast<long long>(Dropped->asNumber()));
}

/// The "server" section of a stats document, whether it came from a
/// daemon (top-level) or the router (under "aggregate").
const json::Value *statsServerSection(const json::Value &Doc) {
  if (const json::Value *Srv = Doc.get("server"); Srv && Srv->isObject())
    return Srv;
  if (const json::Value *Agg = Doc.get("aggregate"); Agg && Agg->isObject())
    if (const json::Value *Srv = Agg->get("server"); Srv && Srv->isObject())
      return Srv;
  return nullptr;
}

/// Likewise for the "result_cache" section.
const json::Value *statsResultCacheSection(const json::Value &Doc) {
  if (const json::Value *RC = Doc.get("result_cache"); RC && RC->isObject())
    return RC;
  if (const json::Value *Agg = Doc.get("aggregate"); Agg && Agg->isObject())
    if (const json::Value *RC = Agg->get("result_cache");
        RC && RC->isObject())
      return RC;
  return nullptr;
}

double numberMember(const json::Value *Obj, const char *Name) {
  if (!Obj)
    return 0;
  const json::Value *V = Obj->get(Name);
  return V && V->isNumber() ? V->asNumber() : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Address = "/tmp/qlosured.sock";
  double ConnectTimeout = 0;
  std::string Command;
  std::string Mapper = "qlosure";
  std::string Backend = "sherbrooke";
  std::string InputPath;
  std::string OutputPath;
  bool Bidirectional = false;
  bool ErrorAware = false;
  bool Affine = false;
  bool StatsOnly = false;
  bool QasmOnly = false;
  bool ExpectCacheHit = false;
  bool Progress = false;
  double TimeoutMs = 0;
  double CancelAfterMs = -1;
  uint64_t CalibrationSeed = 1;
  std::string Id;
  bool TraceRequest = false;
  double WatchSeconds = 0;

  for (int I = 1; I < Argc; ++I) {
    if ((!std::strcmp(Argv[I], "--connect") ||
         !std::strcmp(Argv[I], "--socket")) &&
        I + 1 < Argc) {
      Address = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--connect-timeout") && I + 1 < Argc) {
      ConnectTimeout = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--mapper") && I + 1 < Argc) {
      Mapper = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--backend") && I + 1 < Argc) {
      Backend = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--calibration") && I + 1 < Argc) {
      CalibrationSeed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (!std::strcmp(Argv[I], "--timeout-ms") && I + 1 < Argc) {
      TimeoutMs = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--cancel-after-ms") && I + 1 < Argc) {
      CancelAfterMs = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--id") && I + 1 < Argc) {
      Id = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--progress")) {
      Progress = true;
    } else if (!std::strcmp(Argv[I], "--trace")) {
      TraceRequest = true;
    } else if (!std::strcmp(Argv[I], "--watch") && I + 1 < Argc) {
      WatchSeconds = std::strtod(Argv[++I], nullptr);
    } else if (!std::strcmp(Argv[I], "--output") && I + 1 < Argc) {
      OutputPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--bidirectional")) {
      Bidirectional = true;
    } else if (!std::strcmp(Argv[I], "--error-aware")) {
      ErrorAware = true;
    } else if (!std::strcmp(Argv[I], "--affine")) {
      Affine = true;
    } else if (!std::strcmp(Argv[I], "--stats-only")) {
      StatsOnly = true;
    } else if (!std::strcmp(Argv[I], "--qasm-only")) {
      QasmOnly = true;
    } else if (!std::strcmp(Argv[I], "--expect-cache-hit")) {
      ExpectCacheHit = true;
    } else if (Argv[I][0] == '-') {
      return usage(Argv[0]);
    } else if (Command.empty()) {
      Command = Argv[I];
    } else {
      InputPath = Argv[I];
    }
  }
  if (Command != "ping" && Command != "stats" && Command != "metrics" &&
      Command != "shutdown" && Command != "route" && Command != "batch")
    return usage(Argv[0]);

  std::string RequestLine;
  if (Command == "batch") {
    if (InputPath.empty()) {
      std::fprintf(stderr,
                   "qlosure-client: error: batch needs a directory of "
                   ".qasm files\n");
      return 2;
    }
    std::error_code DirError;
    std::vector<std::filesystem::path> Files;
    for (const auto &Entry :
         std::filesystem::directory_iterator(InputPath, DirError)) {
      if (Entry.is_regular_file() && Entry.path().extension() == ".qasm")
        Files.push_back(Entry.path());
    }
    if (DirError) {
      std::fprintf(stderr, "qlosure-client: error: cannot list %s: %s\n",
                   InputPath.c_str(), DirError.message().c_str());
      return 2;
    }
    if (Files.empty()) {
      std::fprintf(stderr, "qlosure-client: error: no .qasm files in %s\n",
                   InputPath.c_str());
      return 2;
    }
    std::sort(Files.begin(), Files.end());
    json::Value Items = json::Value::array();
    for (const std::filesystem::path &Path : Files) {
      std::ifstream In(Path);
      if (!In) {
        std::fprintf(stderr, "qlosure-client: error: cannot open %s\n",
                     Path.c_str());
        return 2;
      }
      std::string Source{std::istreambuf_iterator<char>(In),
                         std::istreambuf_iterator<char>()};
      json::Value Item = json::Value::object();
      Item.set("name", Path.filename().string());
      Item.set("qasm", std::move(Source));
      Items.push(std::move(Item));
    }
    if (Id.empty())
      Id = "b1";
    json::Value Req = json::Value::object();
    Req.set("op", "batch");
    Req.set("id", Id);
    Req.set("mapper", Mapper);
    Req.set("backend", Backend);
    if (Bidirectional)
      Req.set("bidirectional", true);
    if (ErrorAware) {
      Req.set("error_aware", true);
      Req.set("calibration", CalibrationSeed);
    }
    if (Affine)
      Req.set("affine", true);
    if (TimeoutMs > 0)
      Req.set("timeout_ms", TimeoutMs);
    if (TraceRequest)
      Req.set("trace", true);
    if (StatsOnly)
      Req.set("include_qasm", false);
    Req.set("items", std::move(Items));
    RequestLine = Req.dump();
  } else if (Command == "route") {
    std::string Source;
    if (InputPath.empty()) {
      std::ostringstream Buffer;
      Buffer << std::cin.rdbuf();
      Source = Buffer.str();
    } else {
      std::ifstream In(InputPath);
      if (!In) {
        std::fprintf(stderr, "qlosure-client: error: cannot open %s\n",
                     InputPath.c_str());
        return 2;
      }
      Source.assign(std::istreambuf_iterator<char>(In),
                    std::istreambuf_iterator<char>());
    }
    // The v2 features (cancel, progress events) need a correlation id;
    // a traced route gets one too so the router can merge its spans in
    // (the daemon alone would trace an id-less request just fine).
    if (Id.empty() && (CancelAfterMs >= 0 || Progress || TraceRequest))
      Id = "r1";
    json::Value Req = json::Value::object();
    Req.set("op", "route");
    Req.set("qasm", Source);
    Req.set("mapper", Mapper);
    Req.set("backend", Backend);
    if (!Id.empty())
      Req.set("id", Id);
    if (Bidirectional)
      Req.set("bidirectional", true);
    if (ErrorAware) {
      Req.set("error_aware", true);
      Req.set("calibration", CalibrationSeed);
    }
    if (Affine)
      Req.set("affine", true);
    if (TimeoutMs > 0)
      Req.set("timeout_ms", TimeoutMs);
    if (Progress)
      Req.set("progress", true);
    if (TraceRequest)
      Req.set("trace", true);
    if (StatsOnly)
      Req.set("include_qasm", false);
    RequestLine = Req.dump();
  } else {
    json::Value Req = json::Value::object();
    Req.set("op", Command);
    if (!Id.empty())
      Req.set("id", Id);
    RequestLine = Req.dump();
  }

  Client Conn;
  if (Status S = Conn.connect(Address, ConnectTimeout); !S.ok())
    return transportError(S);

  auto PrintEvent = [](const std::string &Line) {
    std::fprintf(stderr, "%s\n", Line.c_str());
  };
  std::string ResponseLine;
  if (Command == "route" && CancelAfterMs >= 0) {
    // Client-side abort: submit, wait, cancel on the same connection,
    // then demultiplex the cancel ack (stderr) and the route's final
    // response (stdout, handled below like any other).
    if (Status S = Conn.sendLine(RequestLine); !S.ok())
      return transportError(S);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(CancelAfterMs));
    json::Value CancelReq = json::Value::object();
    CancelReq.set("op", "cancel");
    CancelReq.set("id", Id);
    if (Status S = Conn.sendLine(CancelReq.dump()); !S.ok())
      return transportError(S);
    std::string Ack;
    if (Status S = Conn.recvResponseFor(Id, Ack, PrintEvent, "cancel");
        !S.ok())
      return transportError(S);
    std::fprintf(stderr, "%s\n", Ack.c_str());
    if (Status S =
            Conn.recvResponseFor(Id, ResponseLine, PrintEvent, "route");
        !S.ok())
      return transportError(S);
  } else {
    if (Status S = Conn.sendLine(RequestLine); !S.ok())
      return transportError(S);
    if (Status S = Conn.recvResponseFor(Id, ResponseLine, PrintEvent);
        !S.ok())
      return transportError(S);
  }

  json::ParseResult Parsed = json::parse(ResponseLine);
  if (!Parsed.Ok) {
    std::fprintf(stderr,
                 "qlosure-client: error: malformed response: %s\n",
                 Parsed.Error.c_str());
    return 3;
  }
  const json::Value &Response = Parsed.V;
  bool Ok = Response.get("ok") && Response.get("ok")->asBool();

  const json::Value *Qasm = Response.get("qasm");
  if (Ok && Qasm && Qasm->isString() && !OutputPath.empty()) {
    std::ofstream Out(OutputPath);
    if (!Out) {
      std::fprintf(stderr, "qlosure-client: error: cannot write %s\n",
                   OutputPath.c_str());
      return 2;
    }
    Out << Qasm->asString();
  }
  const json::Value *MetricsBody = Response.get("body");
  if (Command == "metrics" && Ok && MetricsBody && MetricsBody->isString()) {
    // The exposition text itself, ready for `curl`-style consumption.
    std::fputs(MetricsBody->asString().c_str(), stdout);
  } else if (QasmOnly) {
    if (Ok && Qasm && Qasm->isString())
      std::fputs(Qasm->asString().c_str(), stdout);
    else
      std::fputs(ResponseLine.c_str(), stdout), std::fputc('\n', stdout);
  } else {
    std::fputs(ResponseLine.c_str(), stdout);
    std::fputc('\n', stdout);
  }

  if (Ok && Command == "route")
    printTrace(Response);
  if (Ok && Command == "stats") {
    // Short human summary on stderr; stdout keeps the raw JSON document
    // so scripted consumers stay unaffected.
    if (const json::Value *Srv = Response.get("server");
        Srv && Srv->isObject()) {
      auto Count = [&](const char *Name) -> long long {
        const json::Value *V = Srv->get(Name);
        return V && V->isNumber() ? static_cast<long long>(V->asNumber())
                                  : 0;
      };
      std::fprintf(stderr,
                   "server: %lld requests (%lld route, %lld errors), "
                   "affine replays %lld, affine fallbacks %lld\n",
                   Count("requests"), Count("route_requests"),
                   Count("errors"), Count("affine_replays"),
                   Count("affine_fallbacks"));
    }
    if (WatchSeconds > 0) {
      // --watch: keep the connection and re-poll, turning the absolute
      // counters into per-interval deltas. Runs until interrupted or the
      // transport drops.
      const json::Value *Srv = statsServerSection(Response);
      const json::Value *Cache = statsResultCacheSection(Response);
      double PrevRequests = numberMember(Srv, "requests");
      double PrevHits = numberMember(Cache, "hits");
      double PrevMisses = numberMember(Cache, "misses");
      auto PrevAt = std::chrono::steady_clock::now();
      for (;;) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(WatchSeconds));
        if (Status S = Conn.sendLine(RequestLine); !S.ok())
          return transportError(S);
        std::string PollLine;
        if (Status S = Conn.recvResponseFor(Id, PollLine, PrintEvent);
            !S.ok())
          return transportError(S);
        json::ParseResult Poll = json::parse(PollLine);
        if (!Poll.Ok || !Poll.V.isObject())
          continue;
        std::fputs(PollLine.c_str(), stdout);
        std::fputc('\n', stdout);
        std::fflush(stdout);
        const auto Now = std::chrono::steady_clock::now();
        double Interval =
            std::chrono::duration<double>(Now - PrevAt).count();
        PrevAt = Now;
        Srv = statsServerSection(Poll.V);
        Cache = statsResultCacheSection(Poll.V);
        double Requests = numberMember(Srv, "requests");
        double Hits = numberMember(Cache, "hits");
        double Misses = numberMember(Cache, "misses");
        double DeltaReq = Requests - PrevRequests;
        double DeltaLookups = (Hits - PrevHits) + (Misses - PrevMisses);
        double HitRate =
            DeltaLookups > 0 ? (Hits - PrevHits) / DeltaLookups * 100.0
                             : 0.0;
        std::fprintf(stderr,
                     "watch: %+.0f requests (%.1f/s), result-cache hit "
                     "rate %.1f%% over %.1fs\n",
                     DeltaReq, Interval > 0 ? DeltaReq / Interval : 0.0,
                     HitRate, Interval);
        PrevRequests = Requests;
        PrevHits = Hits;
        PrevMisses = Misses;
      }
    }
  }
  if (!Ok)
    return 1;
  if (Command == "batch") {
    // Per-item report on stderr; the exit code reflects the items, not
    // just the batch mechanism (a summary with failures exits 1).
    size_t NotOk = 0;
    if (const json::Value *Items = Response.get("items");
        Items && Items->isArray()) {
      for (const json::Value &Item : Items->items()) {
        const json::Value *Index = Item.get("index");
        const json::Value *Name = Item.get("name");
        const json::Value *ItemStatus = Item.get("status");
        std::string StatusText =
            ItemStatus && ItemStatus->isString() ? ItemStatus->asString()
                                                 : "?";
        std::fprintf(stderr, "item %lld%s%s%s: %s\n",
                     Index ? static_cast<long long>(Index->asNumber()) : -1,
                     Name ? " (" : "",
                     Name ? Name->asString().c_str() : "",
                     Name ? ")" : "", StatusText.c_str());
        if (StatusText != "ok")
          ++NotOk;
      }
    }
    if (NotOk) {
      std::fprintf(stderr,
                   "qlosure-client: %zu of the batch items did not "
                   "succeed\n",
                   NotOk);
      return 1;
    }
  }
  if (ExpectCacheHit) {
    const json::Value *Hit = Response.get("cache_hit");
    if (!Hit || !Hit->asBool()) {
      std::fprintf(stderr,
                   "qlosure-client: error: expected a cache hit but the "
                   "response reports a miss\n");
      return 4;
    }
  }
  return 0;
}
