//===- tests/WorkloadsTest.cpp - QUEKO + QASMBench generator tests ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"
#include "route/Verify.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

#include <set>

using namespace qlosure;

//===----------------------------------------------------------------------===//
// QUEKO generator
//===----------------------------------------------------------------------===//

TEST(QuekoTest, RealizesExactTargetDepth) {
  CouplingGraph Gen = makeAspen16();
  for (unsigned Depth : {5u, 20u, 45u}) {
    QuekoSpec Spec;
    Spec.Depth = Depth;
    Spec.Seed = Depth;
    QuekoInstance I = generateQueko(Gen, Spec);
    EXPECT_EQ(I.OptimalDepth, Depth);
    // The scrambled circuit has the same dependence structure, so the
    // same depth.
    EXPECT_EQ(I.Circ.depth(), Depth);
  }
}

TEST(QuekoTest, WitnessPlacementNeedsNoSwaps) {
  // Un-scrambling with the witness yields a circuit that is directly
  // executable on the generation device — the optimality certificate.
  CouplingGraph Gen = makeAspen16();
  QuekoSpec Spec;
  Spec.Depth = 25;
  Spec.Seed = 9;
  QuekoInstance I = generateQueko(Gen, Spec);
  Circuit OnDevice = I.Circ.withMappedQubits([&I](int32_t Q) {
    return static_cast<int32_t>(I.Witness[static_cast<size_t>(Q)]);
  });
  for (const Gate &G : OnDevice.gates()) {
    if (!G.isTwoQubit())
      continue;
    EXPECT_TRUE(Gen.areAdjacent(static_cast<unsigned>(G.Qubits[0]),
                                static_cast<unsigned>(G.Qubits[1])))
        << G.toString();
  }
  EXPECT_EQ(OnDevice.depth(), I.OptimalDepth);
}

TEST(QuekoTest, WitnessIsPermutation) {
  QuekoSpec Spec;
  Spec.Depth = 10;
  Spec.Seed = 3;
  QuekoInstance I = generateQueko(makeSycamore54(), Spec);
  std::set<unsigned> Targets(I.Witness.begin(), I.Witness.end());
  EXPECT_EQ(Targets.size(), 54u);
}

TEST(QuekoTest, DeterministicPerSeed) {
  CouplingGraph Gen = makeAspen16();
  QuekoSpec Spec;
  Spec.Depth = 12;
  Spec.Seed = 42;
  QuekoInstance A = generateQueko(Gen, Spec);
  QuekoInstance B = generateQueko(Gen, Spec);
  ASSERT_EQ(A.Circ.size(), B.Circ.size());
  for (size_t I = 0; I < A.Circ.size(); ++I) {
    EXPECT_EQ(A.Circ.gate(I).Kind, B.Circ.gate(I).Kind);
    EXPECT_EQ(A.Circ.gate(I).Qubits, B.Circ.gate(I).Qubits);
  }
  Spec.Seed = 43;
  QuekoInstance C = generateQueko(Gen, Spec);
  bool Different = A.Circ.size() != C.Circ.size();
  for (size_t I = 0; !Different && I < A.Circ.size(); ++I)
    Different = !(A.Circ.gate(I).Qubits == C.Circ.gate(I).Qubits);
  EXPECT_TRUE(Different);
}

TEST(QuekoTest, DensityControlsTwoQubitShare) {
  CouplingGraph Gen = makeKings9x9();
  QuekoSpec Sparse;
  Sparse.Depth = 30;
  Sparse.TwoQubitDensity = 0.1;
  Sparse.Seed = 4;
  QuekoSpec Dense = Sparse;
  Dense.TwoQubitDensity = 0.6;
  size_t SparseTwoQ = generateQueko(Gen, Sparse).Circ.numTwoQubitGates();
  size_t DenseTwoQ = generateQueko(Gen, Dense).Circ.numTwoQubitGates();
  EXPECT_GT(DenseTwoQ, 2 * SparseTwoQ);
}

TEST(QuekoTest, PaperSetsShape) {
  auto Sets = paperQuekoSets();
  ASSERT_EQ(Sets.size(), 4u);
  EXPECT_EQ(Sets[0].GenDevice.numQubits(), 16u);
  EXPECT_EQ(Sets[1].GenDevice.numQubits(), 54u);
  EXPECT_EQ(Sets[2].GenDevice.numQubits(), 81u);
  EXPECT_EQ(Sets[3].GenDevice.numQubits(), 256u);
}

TEST(QuekoTest, RoutedOptimalDepthIsLowerBound) {
  // No mapper can beat the generated optimal depth.
  CouplingGraph Gen = makeAspen16();
  QuekoSpec Spec;
  Spec.Depth = 20;
  Spec.Seed = 6;
  QuekoInstance I = generateQueko(Gen, Spec);
  QlosureRouter Router;
  RoutingResult R = Router.routeWithIdentity(I.Circ, Gen);
  EXPECT_TRUE(verifyRouting(I.Circ, Gen, R).Ok);
  EXPECT_GE(R.Routed.depth(), I.OptimalDepth);
}

//===----------------------------------------------------------------------===//
// QASMBench-style generators
//===----------------------------------------------------------------------===//

TEST(QasmBenchTest, QftGateCountFormula) {
  // Decomposed QFT(n): n H + n(n-1)/2 * (2 CX + 3 RZ) + floor(n/2) SWAP.
  for (unsigned N : {4u, 8u, 13u}) {
    Circuit C = makeQft(N);
    size_t Pairs = static_cast<size_t>(N) * (N - 1) / 2;
    EXPECT_EQ(C.size(), N + 5 * Pairs + N / 2) << "n=" << N;
    EXPECT_EQ(C.numTwoQubitGates(), 2 * Pairs + N / 2);
  }
}

TEST(QasmBenchTest, QftUndecomposedUsesCpGates) {
  Circuit C = makeQft(5, /*DecomposeCp=*/false);
  size_t NumCp = 0;
  for (const Gate &G : C.gates())
    NumCp += G.Kind == GateKind::CP;
  EXPECT_EQ(NumCp, 10u);
}

TEST(QasmBenchTest, AdderStructure) {
  Circuit C = makeAdder(10);
  EXPECT_EQ(C.numQubits(), 10u);
  for (const Gate &G : C.gates())
    EXPECT_LE(G.numQubits(), 2u);
  // Width 4: 2*width MAJ/UMA blocks with one Toffoli (6 CX) + 2 CX each,
  // plus the carry CX.
  EXPECT_EQ(C.numTwoQubitGates(), 8u * (6 + 2) + 1);
}

TEST(QasmBenchTest, SpotlightSizesMatchPaper) {
  auto Spotlight = spotlightQasmBenchCircuits();
  ASSERT_EQ(Spotlight.size(), 7u);
  EXPECT_EQ(Spotlight[0].Circ.numQubits(), 20u); // qram_n20.
  EXPECT_EQ(Spotlight[1].Circ.numQubits(), 39u); // qugan_n39.
  EXPECT_EQ(Spotlight[2].Circ.numQubits(), 45u); // multiplier_n45.
  EXPECT_EQ(Spotlight[3].Circ.numQubits(), 63u); // qft_n63.
  EXPECT_EQ(Spotlight[4].Circ.numQubits(), 64u); // adder_n64.
  EXPECT_EQ(Spotlight[5].Circ.numQubits(), 71u); // qugan_n71.
  EXPECT_EQ(Spotlight[6].Circ.numQubits(), 75u); // multiplier_n75.
}

TEST(QasmBenchTest, SuiteHas41ValidCircuits) {
  auto Suite = standardQasmBenchSuite();
  ASSERT_EQ(Suite.size(), 41u);
  std::set<std::string> Names;
  for (const NamedCircuit &NC : Suite) {
    Names.insert(NC.Name);
    EXPECT_GE(NC.Circ.numQubits(), 20u) << NC.Name;
    EXPECT_LE(NC.Circ.numQubits(), 81u) << NC.Name;
    EXPECT_GT(NC.Circ.size(), 0u) << NC.Name;
    NC.Circ.verifyInvariants();
    for (const Gate &G : NC.Circ.gates())
      EXPECT_LE(G.numQubits(), 2u) << NC.Name;
  }
  EXPECT_EQ(Names.size(), 41u); // All names unique.
}

TEST(QasmBenchTest, GhzDepthAndShape) {
  Circuit C = makeGhz(12);
  EXPECT_EQ(C.size(), 12u);
  EXPECT_EQ(C.depth(), 12u);
  EXPECT_EQ(C.numTwoQubitGates(), 11u);
}

TEST(QasmBenchTest, QuganScalesWithLayers) {
  size_t OneLayer = makeQugan(10, 1).size();
  size_t FourLayers = makeQugan(10, 4).size();
  EXPECT_EQ(FourLayers, 4 * OneLayer);
}

TEST(QasmBenchTest, MultiplierToffoliCount) {
  // Width w: sum over i of (w - i) partial products, each one Toffoli
  // plus a carry Toffoli when not the top bit.
  Circuit C = makeMultiplier(9); // Width 3.
  // Partial products: 3 + 2 + 1 = 6; carries: (k+1<3) for (i,j) pairs:
  // pairs with k<2: (0,0),(0,1),(1,0) -> 3 carries. 9 Toffolis = 54 CX.
  EXPECT_EQ(C.numTwoQubitGates(), 54u);
}

TEST(QasmBenchTest, IsingUsesRzzChains) {
  Circuit C = makeIsing(6, 2);
  size_t NumRzz = 0;
  for (const Gate &G : C.gates())
    NumRzz += G.Kind == GateKind::RZZ;
  EXPECT_EQ(NumRzz, 2u * 5u);
}

TEST(QasmBenchTest, DeterministicGenerators) {
  Circuit A = makeBv(20);
  Circuit B = makeBv(20);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A.gate(I).Qubits, B.gate(I).Qubits);
  Circuit QA = makeQaoa(16, 2);
  Circuit QB = makeQaoa(16, 2);
  EXPECT_EQ(QA.size(), QB.size());
}
