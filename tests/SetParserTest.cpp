//===- tests/SetParserTest.cpp - ISL-notation parser tests ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/Counting.h"
#include "presburger/SetParser.h"
#include "presburger/TransitiveClosure.h"

#include <gtest/gtest.h>

using namespace qlosure;
using namespace qlosure::presburger;

TEST(SetParserTest, SimpleInterval) {
  auto R = parseIntegerSet("{ [i] : 0 <= i <= 9 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Set->contains({0}));
  EXPECT_TRUE(R.Set->contains({9}));
  EXPECT_FALSE(R.Set->contains({10}));
  EXPECT_EQ(*R.Set->cardinality(), 10);
}

TEST(SetParserTest, StrictBoundsAndChaining) {
  auto R = parseIntegerSet("{ [i, j] : 0 <= i < 4 and i < j < 6 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Set->contains({0, 1}));
  EXPECT_TRUE(R.Set->contains({3, 5}));
  EXPECT_FALSE(R.Set->contains({3, 3}));
  EXPECT_FALSE(R.Set->contains({4, 5}));
}

TEST(SetParserTest, CoefficientSyntaxes) {
  // "2i", "2 * i" and "i * 2" are all accepted.
  for (const char *Text :
       {"{ [i] : 2i <= 10 and i >= 0 }", "{ [i] : 2 * i <= 10 and i >= 0 }",
        "{ [i] : i * 2 <= 10 and i >= 0 }"}) {
    auto R = parseIntegerSet(Text);
    ASSERT_TRUE(R.succeeded()) << Text << ": " << R.Error;
    EXPECT_TRUE(R.Set->contains({5})) << Text;
    EXPECT_FALSE(R.Set->contains({6})) << Text;
  }
}

TEST(SetParserTest, EqualityAndNegatives) {
  auto R = parseIntegerSet("{ [i, j] : j = 2i - 3 and -2 <= i <= 2 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Set->contains({0, -3}));
  EXPECT_TRUE(R.Set->contains({2, 1}));
  EXPECT_FALSE(R.Set->contains({1, 0}));
  EXPECT_EQ(*R.Set->cardinality(), 5);
}

TEST(SetParserTest, UnionViaOr) {
  auto R = parseIntegerSet(
      "{ [i] : 0 <= i <= 2 or 10 <= i <= 11 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(*R.Set->cardinality(), 5);
  EXPECT_TRUE(R.Set->contains({11}));
  EXPECT_FALSE(R.Set->contains({5}));
}

TEST(SetParserTest, UniverseWithoutCondition) {
  auto R = parseIntegerSet("{ [i, j] }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Set->contains({123, -456}));
}

TEST(SetParserTest, Errors) {
  EXPECT_FALSE(parseIntegerSet("{ [i] : i <= }").succeeded());
  EXPECT_FALSE(parseIntegerSet("{ [i] : q <= 3 }").succeeded());
  EXPECT_FALSE(parseIntegerSet("[i] : i >= 0").succeeded());
  EXPECT_FALSE(parseIntegerSet("{ [i, i] : i >= 0 }").succeeded());
}

TEST(MapParserTest, NamedOutputVariable) {
  auto R = parseIntegerMap("{ [i] -> [j] : j = i + 3 and 0 <= i <= 5 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Map->contains({0}, {3}));
  EXPECT_TRUE(R.Map->contains({5}, {8}));
  EXPECT_FALSE(R.Map->contains({6}, {9}));
}

TEST(MapParserTest, ExpressionOutputs) {
  // The paper's Sec. III-C access relation: q2 = [i] -> [2i + 1].
  auto R = parseIntegerMap("{ [i] -> [2i + 1] : 0 <= i <= 3 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Map->contains({0}, {1}));
  EXPECT_TRUE(R.Map->contains({3}, {7}));
  EXPECT_FALSE(R.Map->contains({2}, {4}));
}

TEST(MapParserTest, MultiDimensionalOutputs) {
  auto R = parseIntegerMap(
      "{ [i, j] -> [j, i + j] : 0 <= i <= 2 and 0 <= j <= 2 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Map->contains({1, 2}, {2, 3}));
  EXPECT_FALSE(R.Map->contains({1, 2}, {1, 3}));
}

TEST(MapParserTest, ParsedTranslationClosureWorks) {
  // The parsed map feeds straight into the closure machinery.
  auto R = parseIntegerMap("{ [i] -> [i + 2] : 0 <= i <= 9 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  ClosureOptions Opts;
  Opts.AllowFiniteFallback = false;
  ClosureResult C = transitiveClosure(*R.Map, Opts);
  EXPECT_TRUE(C.IsExact);
  EXPECT_TRUE(C.Closure.contains({1}, {11}));
  EXPECT_FALSE(C.Closure.contains({1}, {4}));
}

TEST(MapParserTest, UnionMap) {
  auto R = parseIntegerMap(
      "{ [i] -> [i + 1] : 0 <= i <= 3 or 10 <= i <= 12 }");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_TRUE(R.Map->contains({2}, {3}));
  EXPECT_TRUE(R.Map->contains({11}, {12}));
  EXPECT_FALSE(R.Map->contains({7}, {8}));
}

TEST(MapParserTest, Errors) {
  EXPECT_FALSE(parseIntegerMap("{ [i] -> }").succeeded());
  EXPECT_FALSE(parseIntegerMap("{ [i] : i >= 0 }").succeeded());
  EXPECT_FALSE(parseIntegerMap("{ [i] -> [k + 1] }").succeeded());
}
