//===- tests/PresburgerPropertyTest.cpp - randomized algebraic properties ---------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based tests of the presburger substrate on seeded random
/// inputs: set algebra agrees with pointwise semantics, Fourier-Motzkin
/// projection is sound, relation composition/reversal obey their laws, and
/// transitive closures contain the relation and are transitively closed.
///
//===----------------------------------------------------------------------===//

#include "presburger/TransitiveClosure.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <set>

using namespace qlosure;
using namespace qlosure::presburger;

namespace {

/// A random conjunctive set over [Lo, Hi]^2 with a few extra half-plane
/// constraints (always bounded).
BasicSet randomBasicSet(Rng &Generator, int64_t Lo = -4, int64_t Hi = 6) {
  BasicSet Set(2);
  Set.addBounds(0, Lo, Hi);
  Set.addBounds(1, Lo, Hi);
  unsigned Extra = static_cast<unsigned>(Generator.nextBounded(3));
  for (unsigned I = 0; I < Extra; ++I) {
    AffineExpr E({Generator.nextInRange(-2, 2), Generator.nextInRange(-2, 2)},
                 Generator.nextInRange(-4, 8));
    Set.addConstraint(Constraint(std::move(E), ConstraintKind::Inequality));
  }
  return Set;
}

std::set<Point> enumerateToSet(const BasicSet &Set) {
  auto Points = Set.enumeratePoints();
  EXPECT_TRUE(Points.has_value());
  return std::set<Point>(Points->begin(), Points->end());
}

} // namespace

class PresburgerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PresburgerPropertyTest, EnumerationMatchesMembership) {
  Rng Generator(GetParam());
  BasicSet Set = randomBasicSet(Generator);
  std::set<Point> Points = enumerateToSet(Set);
  // Every point in the box is in the enumeration iff contains() says so.
  for (int64_t X = -5; X <= 7; ++X)
    for (int64_t Y = -5; Y <= 7; ++Y) {
      Point P{X, Y};
      EXPECT_EQ(Points.count(P) > 0, Set.contains(P))
          << "(" << X << ", " << Y << ")";
    }
}

TEST_P(PresburgerPropertyTest, IntersectionIsPointwiseAnd) {
  Rng Generator(GetParam() * 31 + 7);
  BasicSet A = randomBasicSet(Generator);
  BasicSet B = randomBasicSet(Generator);
  BasicSet Both = A.intersect(B);
  for (int64_t X = -5; X <= 7; ++X)
    for (int64_t Y = -5; Y <= 7; ++Y) {
      Point P{X, Y};
      EXPECT_EQ(Both.contains(P), A.contains(P) && B.contains(P));
    }
}

TEST_P(PresburgerPropertyTest, UnionIsPointwiseOr) {
  Rng Generator(GetParam() * 17 + 3);
  IntegerSet A(randomBasicSet(Generator));
  IntegerSet B(randomBasicSet(Generator));
  IntegerSet Either = A.unionWith(B);
  for (int64_t X = -5; X <= 7; ++X)
    for (int64_t Y = -5; Y <= 7; ++Y) {
      Point P{X, Y};
      EXPECT_EQ(Either.contains(P), A.contains(P) || B.contains(P));
    }
}

TEST_P(PresburgerPropertyTest, FourierMotzkinProjectionIsSound) {
  // Eliminating y must keep every x that has a witness y.
  Rng Generator(GetParam() * 101 + 13);
  BasicSet Set = randomBasicSet(Generator);
  BasicSet Projected = Set.projectOutTrailing(1);
  auto Points = Set.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  for (const Point &P : *Points)
    EXPECT_TRUE(Projected.contains({P[0]}))
        << "lost x = " << P[0];
}

TEST_P(PresburgerPropertyTest, ReverseIsInvolution) {
  Rng Generator(GetParam() * 7 + 1);
  // A random finite relation out of explicit pairs.
  IntegerMap R(1, 1);
  unsigned NumPairs = 1 + static_cast<unsigned>(Generator.nextBounded(6));
  for (unsigned I = 0; I < NumPairs; ++I)
    R.addPiece(BasicMap::singlePair({Generator.nextInRange(0, 8)},
                                    {Generator.nextInRange(0, 8)}));
  IntegerMap RR = R.reverse().reverse();
  auto Pairs = R.enumeratePairs();
  auto PairsRR = RR.enumeratePairs();
  ASSERT_TRUE(Pairs && PairsRR);
  EXPECT_EQ(*Pairs, *PairsRR);
}

TEST_P(PresburgerPropertyTest, CompositionMatchesPointwise) {
  Rng Generator(GetParam() * 53 + 29);
  auto randomRelation = [&Generator]() {
    IntegerMap R(1, 1);
    unsigned NumPairs = 1 + static_cast<unsigned>(Generator.nextBounded(5));
    for (unsigned I = 0; I < NumPairs; ++I)
      R.addPiece(BasicMap::singlePair({Generator.nextInRange(0, 5)},
                                      {Generator.nextInRange(0, 5)}));
    return R;
  };
  IntegerMap A = randomRelation();
  IntegerMap B = randomRelation();
  IntegerMap AB = A.composeWith(B);
  for (int64_t X = 0; X <= 5; ++X)
    for (int64_t Z = 0; Z <= 5; ++Z) {
      bool Expect = false;
      for (int64_t Y = 0; Y <= 5 && !Expect; ++Y)
        Expect = A.contains({X}, {Y}) && B.contains({Y}, {Z});
      EXPECT_EQ(AB.contains({X}, {Z}), Expect)
          << X << " -> " << Z;
    }
}

TEST_P(PresburgerPropertyTest, ClosureContainsRelationAndIsTransitive) {
  Rng Generator(GetParam() * 211 + 5);
  IntegerMap R(1, 1);
  unsigned NumPairs = 2 + static_cast<unsigned>(Generator.nextBounded(6));
  for (unsigned I = 0; I < NumPairs; ++I)
    R.addPiece(BasicMap::singlePair({Generator.nextInRange(0, 6)},
                                    {Generator.nextInRange(0, 6)}));
  ClosureResult C = transitiveClosure(R);
  ASSERT_TRUE(C.IsExact);
  // R subseteq R+.
  auto Pairs = R.enumeratePairs();
  ASSERT_TRUE(Pairs.has_value());
  for (const auto &[In, Out] : *Pairs)
    EXPECT_TRUE(C.Closure.contains(In, Out));
  // R+ transitively closed: R+(x,y) and R+(y,z) => R+(x,z).
  for (int64_t X = 0; X <= 6; ++X)
    for (int64_t Y = 0; Y <= 6; ++Y) {
      if (!C.Closure.contains({X}, {Y}))
        continue;
      for (int64_t Z = 0; Z <= 6; ++Z) {
        if (!C.Closure.contains({Y}, {Z}))
          continue;
        EXPECT_TRUE(C.Closure.contains({X}, {Z}))
            << X << "->" << Y << "->" << Z;
      }
    }
}

TEST_P(PresburgerPropertyTest, TranslationClosureMatchesIteratedCompose) {
  Rng Generator(GetParam() * 997 + 41);
  int64_t Stride = Generator.nextInRange(1, 3);
  int64_t Hi = Generator.nextInRange(6, 14);
  BasicSet Dom(1);
  Dom.addBounds(0, 0, Hi);
  IntegerMap R(BasicMap::translation(Dom, {Stride}));
  ClosureOptions Opts;
  Opts.AllowFiniteFallback = false;
  ClosureResult Symbolic = transitiveClosure(R, Opts);
  ASSERT_TRUE(Symbolic.IsExact);
  // Iterated composition R u R.R u R.R.R ... must equal the closure.
  IntegerMap Power = R;
  IntegerMap UnionAll = R;
  for (int I = 0; I < 20; ++I) {
    Power = Power.composeWith(R);
    UnionAll = UnionAll.unionWith(Power);
  }
  for (int64_t X = 0; X <= Hi; ++X)
    for (int64_t Y = 0; Y <= Hi + Stride; ++Y)
      EXPECT_EQ(Symbolic.Closure.contains({X}, {Y}),
                UnionAll.contains({X}, {Y}))
          << X << " -> " << Y << " (stride " << Stride << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresburgerPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));
