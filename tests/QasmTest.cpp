//===- tests/QasmTest.cpp - OpenQASM frontend tests -------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "qasm/Importer.h"
#include "qasm/Lexer.h"
#include "qasm/Parser.h"
#include "qasm/Printer.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace qlosure;
using namespace qlosure::qasm;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, BasicTokens) {
  auto Tokens = tokenize("cx q[0],q[1];");
  ASSERT_GE(Tokens.size(), 9u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Identifier);
  EXPECT_EQ(Tokens[0].Text, "cx");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::LBracket);
  EXPECT_EQ(Tokens[3].Kind, TokenKind::Integer);
  EXPECT_EQ(Tokens.back().Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, CommentsSkipped) {
  auto Tokens = tokenize("// line\nh /* block */ q;");
  EXPECT_EQ(Tokens[0].Text, "h");
  EXPECT_EQ(Tokens[1].Text, "q");
}

TEST(LexerTest, NumbersAndArrow) {
  auto Tokens = tokenize("3.25e-2 -> 7");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::Real);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Arrow);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::Integer);
}

TEST(LexerTest, PositionsTracked) {
  auto Tokens = tokenize("h q;\ncx a,b;");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[3].Line, 2u); // "cx".
  EXPECT_EQ(Tokens[3].Column, 1u);
}

TEST(LexerTest, ErrorToken) {
  auto Tokens = tokenize("h q; $");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Error);
}

TEST(LexerTest, MalformedExponentIsError) {
  // An exponent marker with no digits must not lex as Real ("1e" used to
  // reach std::stod downstream and throw).
  for (const char *Source : {"1e", "1e+", "2.5E-", "rx(1e) q[0];"}) {
    auto Tokens = tokenize(Source);
    EXPECT_EQ(Tokens.back().Kind, TokenKind::Error) << Source;
    EXPECT_NE(Tokens.back().Text.find("exponent"), std::string::npos)
        << Source;
  }
}

TEST(LexerTest, WellFormedExponentsStillLex) {
  for (const char *Source : {"1e5", "1e+5", "2.5E-3", "0.5e0"}) {
    auto Tokens = tokenize(Source);
    ASSERT_EQ(Tokens.size(), 2u) << Source; // Real + EndOfFile.
    EXPECT_EQ(Tokens[0].Kind, TokenKind::Real) << Source;
    EXPECT_EQ(Tokens[0].Text, Source);
  }
}

TEST(LexerTest, UnterminatedStringIsError) {
  auto Tokens = tokenize("include \"qelib1.inc;\n");
  EXPECT_EQ(Tokens.back().Kind, TokenKind::Error);
  EXPECT_NE(Tokens.back().Text.find("unterminated"), std::string::npos);
}

TEST(ParserTest, MalformedExponentSurfacesAsParseError) {
  auto R = parseQasm("OPENQASM 2.0;\nqreg q[1];\nrx(1e) q[0];\n");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Error.find("exponent"), std::string::npos) << R.Error;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, HeaderAndRegisters) {
  auto R = parseQasm("OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[5];\n"
                     "creg c[5];\n");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Prog->Version, "2.0");
  ASSERT_EQ(R.Prog->Includes.size(), 1u);
  EXPECT_EQ(R.Prog->Statements.size(), 2u);
  EXPECT_TRUE(R.Prog->Statements[0].Reg.IsQuantum);
  EXPECT_EQ(R.Prog->Statements[0].Reg.Size, 5u);
}

TEST(ParserTest, GateCallWithParams) {
  auto R = parseQasm("qreg q[2]; rz(pi/4) q[1];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  const GateCall &Call = R.Prog->Statements[1].Call;
  EXPECT_EQ(Call.Name, "rz");
  ASSERT_EQ(Call.Params.size(), 1u);
  auto V = Call.Params[0]->evaluate({});
  ASSERT_TRUE(V.has_value());
  EXPECT_NEAR(*V, M_PI / 4, 1e-12);
}

TEST(ParserTest, ExpressionPrecedence) {
  auto R = parseQasm("qreg q[1]; rz(1+2*3) q[0];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  auto V = R.Prog->Statements[1].Call.Params[0]->evaluate({});
  EXPECT_DOUBLE_EQ(*V, 7.0);
}

TEST(ParserTest, UnaryMinusAndPower) {
  auto R = parseQasm("qreg q[1]; rz(-2^2) q[0];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  auto V = R.Prog->Statements[1].Call.Params[0]->evaluate({});
  EXPECT_DOUBLE_EQ(*V, -4.0);
}

TEST(ParserTest, GateDefinition) {
  auto R = parseQasm("gate majority a,b,c { cx c,b; cx c,a; ccx a,b,c; }\n"
                     "qreg q[3]; majority q[0],q[1],q[2];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  const GateDef &Def = R.Prog->Statements[0].Gate;
  EXPECT_EQ(Def.Name, "majority");
  EXPECT_EQ(Def.QubitNames.size(), 3u);
  EXPECT_EQ(Def.Body.size(), 3u);
}

TEST(ParserTest, MeasureAndBarrier) {
  auto R = parseQasm("qreg q[2]; creg c[2]; measure q[0] -> c[0]; "
                     "barrier q;");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Prog->Statements[2].StmtKind, Statement::Kind::Measure);
  EXPECT_EQ(R.Prog->Statements[3].StmtKind, Statement::Kind::Barrier);
}

TEST(ParserTest, ErrorsCarryPosition) {
  auto R = parseQasm("qreg q[2];\ncx q[0] q[1];"); // Missing comma.
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Error.find("line 2"), std::string::npos);
}

TEST(ParserTest, RejectsClassicalControl) {
  auto R = parseQasm("qreg q[1]; creg c[1]; if (c==1) x q[0];");
  EXPECT_FALSE(R.succeeded());
}

//===----------------------------------------------------------------------===//
// Importer
//===----------------------------------------------------------------------===//

TEST(ImporterTest, SimpleProgram) {
  auto R = importQasm("OPENQASM 2.0; qreg q[3]; h q[0]; cx q[0],q[1]; "
                      "cx q[1],q[2];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->numQubits(), 3u);
  EXPECT_EQ(R.Circ->size(), 3u);
  EXPECT_EQ(R.Circ->gate(1).Kind, GateKind::CX);
}

TEST(ImporterTest, MultipleQregsFlatten) {
  auto R = importQasm("qreg a[2]; qreg b[3]; cx a[1],b[0];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->numQubits(), 5u);
  EXPECT_EQ(R.Circ->gate(0).Qubits[0], 1);
  EXPECT_EQ(R.Circ->gate(0).Qubits[1], 2); // b[0] is flat index 2.
}

TEST(ImporterTest, BroadcastSingleQubitGate) {
  auto R = importQasm("qreg q[4]; h q;");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 4u);
}

TEST(ImporterTest, BroadcastTwoQubitGate) {
  auto R = importQasm("qreg a[3]; qreg b[3]; cx a,b;");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 3u);
  EXPECT_EQ(R.Circ->gate(2).Qubits[0], 2);
  EXPECT_EQ(R.Circ->gate(2).Qubits[1], 5);
}

TEST(ImporterTest, UserGateInlining) {
  auto R = importQasm("gate entangle(t) a,b { h a; cx a,b; rz(t) b; }\n"
                      "qreg q[2]; entangle(0.5) q[0],q[1];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  ASSERT_EQ(R.Circ->size(), 3u);
  EXPECT_EQ(R.Circ->gate(0).Kind, GateKind::H);
  EXPECT_EQ(R.Circ->gate(2).Kind, GateKind::RZ);
  EXPECT_DOUBLE_EQ(R.Circ->gate(2).Params[0], 0.5);
}

TEST(ImporterTest, NestedUserGates) {
  auto R = importQasm(
      "gate inner a,b { cx a,b; }\n"
      "gate outer a,b,c { inner a,b; inner b,c; }\n"
      "qreg q[3]; outer q[0],q[1],q[2];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 2u);
}

TEST(ImporterTest, MeasureLowered) {
  auto R = importQasm("qreg q[2]; creg c[2]; measure q -> c;");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 2u);
  EXPECT_EQ(R.Circ->gate(0).Kind, GateKind::Measure);
}

TEST(ImporterTest, ErrorsOnUnknownGate) {
  auto R = importQasm("qreg q[1]; frobnicate q[0];");
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Error.find("frobnicate"), std::string::npos);
}

TEST(ImporterTest, ErrorsOnRepeatedOperand) {
  auto R = importQasm("qreg q[2]; cx q[1],q[1];");
  ASSERT_FALSE(R.succeeded());
}

TEST(ImporterTest, ErrorsOnIndexOutOfRange) {
  auto R = importQasm("qreg q[2]; h q[5];");
  ASSERT_FALSE(R.succeeded());
}

TEST(ImporterTest, ErrorsOnArityMismatch) {
  auto R = importQasm("qreg q[3]; cx q[0];");
  ASSERT_FALSE(R.succeeded());
}

//===----------------------------------------------------------------------===//
// Printer round trip
//===----------------------------------------------------------------------===//

TEST(PrinterTest, RoundTripPreservesGates) {
  Circuit C(3, "rt");
  C.add1Q(GateKind::H, 0);
  C.add1Q(GateKind::RZ, 1, 0.25);
  C.addCx(0, 2);
  C.addSwap(1, 2);
  std::string Text = printQasm(C);
  auto R = importQasm(Text);
  ASSERT_TRUE(R.succeeded()) << R.Error;
  ASSERT_EQ(R.Circ->size(), C.size());
  for (size_t I = 0; I < C.size(); ++I) {
    EXPECT_EQ(R.Circ->gate(I).Kind, C.gate(I).Kind);
    EXPECT_EQ(R.Circ->gate(I).Qubits, C.gate(I).Qubits);
    EXPECT_NEAR(R.Circ->gate(I).Params[0], C.gate(I).Params[0], 1e-15);
  }
}

TEST(PrinterTest, EmitsMeasureWithCreg) {
  Circuit C(2);
  C.addGate(Gate(GateKind::Measure, 1));
  std::string Text = printQasm(C);
  EXPECT_NE(Text.find("creg c[2];"), std::string::npos);
  EXPECT_NE(Text.find("measure q[1] -> c[1];"), std::string::npos);
}
