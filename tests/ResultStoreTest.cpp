//===- tests/ResultStoreTest.cpp - Durable result store tests ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The crash/corruption property suite for the append-only result store:
// round-trips, torn tails truncated at every byte offset of the last
// frame, bit flips skipped (and counted) without ever crashing or
// returning wrong bytes, compaction keeping every live record, and the
// single-writer / read-only-reader sharing protocol.
//
//===----------------------------------------------------------------------===//

#include "service/ResultStore.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace qlosure;
using namespace qlosure::service;

namespace {

std::string tempStorePath(const char *Tag) {
  static int Seq = 0;
  return "/tmp/qlosure-store-test-" + std::to_string(getpid()) + "-" + Tag +
         "-" + std::to_string(Seq++) + ".qstore";
}

/// RAII temp file cleanup (also removes a stray .compact sibling).
struct ScopedPath {
  std::string Path;
  explicit ScopedPath(std::string P) : Path(std::move(P)) {}
  ~ScopedPath() {
    std::remove(Path.c_str());
    std::remove((Path + ".compact").c_str());
  }
};

CacheKey key(uint64_t N) { return CacheKey{N, N * 31 + 7, N * 131 + 3}; }

CachedResult sampleResult(uint64_t N) {
  CachedResult R;
  R.RoutedQasm = "OPENQASM 2.0;\n// record " + std::to_string(N) + "\n" +
                 std::string(static_cast<size_t>(N % 97), 'x');
  R.LogicalGates = 10 + N;
  R.RoutedGates = 20 + N;
  R.Swaps = N % 13;
  R.DepthBefore = 4 + N % 7;
  R.DepthAfter = 9 + N % 11;
  R.MappingSeconds = 0.125 * static_cast<double>(N % 5);
  R.TimedOut = (N % 3) == 0;
  R.Verified = (N % 2) == 0;
  R.SuccessProbability = (N % 4) ? 0.5 + 1.0 / static_cast<double>(N + 2)
                                 : -1.0;
  return R;
}

void expectEqualResults(const CachedResult &A, const CachedResult &B) {
  EXPECT_EQ(A.RoutedQasm, B.RoutedQasm);
  EXPECT_EQ(A.LogicalGates, B.LogicalGates);
  EXPECT_EQ(A.RoutedGates, B.RoutedGates);
  EXPECT_EQ(A.Swaps, B.Swaps);
  EXPECT_EQ(A.DepthBefore, B.DepthBefore);
  EXPECT_EQ(A.DepthAfter, B.DepthAfter);
  EXPECT_DOUBLE_EQ(A.MappingSeconds, B.MappingSeconds);
  EXPECT_EQ(A.TimedOut, B.TimedOut);
  EXPECT_EQ(A.Verified, B.Verified);
  EXPECT_DOUBLE_EQ(A.SuccessProbability, B.SuccessProbability);
}

std::unique_ptr<ResultStore> openStore(const std::string &Path,
                                       bool ReadOnly = false,
                                       size_t FsyncBytes = 1 << 20) {
  ResultStoreOptions Options;
  Options.Path = Path;
  Options.ReadOnly = ReadOnly;
  Options.FsyncBytes = FsyncBytes;
  Status Err;
  auto Store = ResultStore::open(Options, Err);
  EXPECT_TRUE(Err.ok()) << Err.message();
  return Store;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(In),
                     std::istreambuf_iterator<char>());
}

void writeFileBytes(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

TEST(ResultStoreTest, FrameEncodeDecodeRoundTrip) {
  for (uint64_t N : {0ull, 1ull, 7ull, 42ull, 1000ull}) {
    CacheKey K = key(N);
    CachedResult V = sampleResult(N);
    std::string Frame = ResultStore::encodeFrame(K, V);
    CacheKey OutK;
    CachedResult OutV;
    size_t FrameSize = 0;
    ASSERT_TRUE(
        ResultStore::decodeFrame(Frame.data(), Frame.size(), OutK, OutV,
                                 FrameSize));
    EXPECT_EQ(FrameSize, Frame.size());
    EXPECT_TRUE(OutK == K);
    expectEqualResults(OutV, V);
  }
}

TEST(ResultStoreTest, DecodeRejectsEveryTruncation) {
  std::string Frame = ResultStore::encodeFrame(key(5), sampleResult(5));
  CacheKey K;
  CachedResult V;
  size_t FrameSize = 0;
  for (size_t Len = 0; Len < Frame.size(); ++Len)
    EXPECT_FALSE(ResultStore::decodeFrame(Frame.data(), Len, K, V, FrameSize))
        << "accepted a " << Len << "-byte prefix of a " << Frame.size()
        << "-byte frame";
  EXPECT_TRUE(
      ResultStore::decodeFrame(Frame.data(), Frame.size(), K, V, FrameSize));
}

TEST(ResultStoreTest, PutGetRoundTripAcrossReopen) {
  ScopedPath P(tempStorePath("roundtrip"));
  const uint64_t N = 25;
  {
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr);
    for (uint64_t I = 0; I < N; ++I)
      ASSERT_TRUE(Store->put(key(I), sampleResult(I)));
    StoreStats S = Store->stats();
    EXPECT_EQ(S.Records, N);
    EXPECT_EQ(S.AppendedRecords, N);
    EXPECT_EQ(S.CorruptSkipped, 0u);
    // Duplicate puts are deduplicated, not re-appended.
    EXPECT_TRUE(Store->put(key(3), sampleResult(3)));
    EXPECT_EQ(Store->stats().AppendedRecords, N);
  }
  auto Store = openStore(P.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Records, N);
  for (uint64_t I = 0; I < N; ++I) {
    auto Got = Store->get(key(I));
    ASSERT_NE(Got, nullptr) << "record " << I << " lost across reopen";
    expectEqualResults(*Got, sampleResult(I));
  }
  EXPECT_EQ(Store->get(CacheKey{999, 999, 999}), nullptr);
  StoreStats S = Store->stats();
  EXPECT_EQ(S.Hits, N);
  EXPECT_EQ(S.Misses, 1u);
}

TEST(ResultStoreTest, TornTailAtEveryByteOffsetRecoversPrefix) {
  ScopedPath P(tempStorePath("torntail"));
  {
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr);
    ASSERT_TRUE(Store->put(key(1), sampleResult(1)));
    ASSERT_TRUE(Store->put(key(2), sampleResult(2)));
  }
  std::string Full = readFileBytes(P.Path);
  std::string LastFrame = ResultStore::encodeFrame(key(3), sampleResult(3));
  // Tear the append of frame 3 at every byte offset: every recovery must
  // keep records 1 and 2 byte-identically and report the torn bytes.
  for (size_t Torn = 0; Torn <= LastFrame.size(); ++Torn) {
    writeFileBytes(P.Path, Full + LastFrame.substr(0, Torn));
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr) << "torn offset " << Torn;
    StoreStats S = Store->stats();
    bool Complete = Torn == LastFrame.size();
    EXPECT_EQ(S.Records, Complete ? 3u : 2u) << "torn offset " << Torn;
    if (!Complete && Torn > 0)
      EXPECT_GT(S.TruncatedBytes + S.CorruptSkipped, 0u)
          << "torn offset " << Torn;
    auto One = Store->get(key(1));
    auto Two = Store->get(key(2));
    ASSERT_NE(One, nullptr) << "torn offset " << Torn;
    ASSERT_NE(Two, nullptr) << "torn offset " << Torn;
    expectEqualResults(*One, sampleResult(1));
    expectEqualResults(*Two, sampleResult(2));
    EXPECT_EQ(Store->get(key(3)) != nullptr, Complete)
        << "torn offset " << Torn;
  }
}

TEST(ResultStoreTest, TornTailIsTruncatedByWriterReopen) {
  ScopedPath P(tempStorePath("truncate"));
  {
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr);
    ASSERT_TRUE(Store->put(key(1), sampleResult(1)));
  }
  std::string Full = readFileBytes(P.Path);
  std::string Tail = ResultStore::encodeFrame(key(2), sampleResult(2));
  writeFileBytes(P.Path, Full + Tail.substr(0, Tail.size() / 2));
  {
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr);
    EXPECT_GT(Store->stats().TruncatedBytes, 0u);
    // The writer physically truncated the torn bytes, and the next
    // append lands where they were.
    EXPECT_EQ(readFileBytes(P.Path).size(), Full.size());
    ASSERT_TRUE(Store->put(key(2), sampleResult(2)));
  }
  auto Store = openStore(P.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Records, 2u);
  ASSERT_NE(Store->get(key(2)), nullptr);
}

TEST(ResultStoreTest, BitFlipsAreSkippedCountedAndNeverCrash) {
  ScopedPath P(tempStorePath("bitflip"));
  {
    auto Store = openStore(P.Path);
    ASSERT_NE(Store, nullptr);
    for (uint64_t I = 1; I <= 3; ++I)
      ASSERT_TRUE(Store->put(key(I), sampleResult(I)));
  }
  std::string Full = readFileBytes(P.Path);
  // Flip one byte at a time across the whole file (header included):
  // recovery must never crash, never return wrong bytes for a surviving
  // record, and count at least one corrupt/torn unit whenever a record
  // went missing. Striding keeps the loop fast while still covering
  // every frame region.
  for (size_t Pos = 0; Pos < Full.size(); Pos += 3) {
    std::string Damaged = Full;
    Damaged[Pos] = static_cast<char>(Damaged[Pos] ^ 0x5a);
    writeFileBytes(P.Path, Damaged);
    ResultStoreOptions Options;
    Options.Path = P.Path;
    Status Err;
    auto Store = ResultStore::open(Options, Err);
    if (!Store) {
      // Only damage inside the 16-byte file header may reject the file.
      EXPECT_LT(Pos, 16u) << Err.message();
      continue;
    }
    StoreStats S = Store->stats();
    uint64_t Found = 0;
    for (uint64_t I = 1; I <= 3; ++I) {
      auto Got = Store->get(key(I));
      if (!Got)
        continue;
      ++Found;
      // A surviving record is byte-correct — a flip may lose records
      // (a flipped length field can orphan everything behind it) but
      // must never corrupt what is returned.
      expectEqualResults(*Got, sampleResult(I));
    }
    if (Found < 3)
      EXPECT_GT(S.CorruptSkipped + S.TruncatedBytes, 0u)
          << "flip at " << Pos << " lost a record without counting it";
  }
}

TEST(ResultStoreTest, CompactionDropsGarbageAndKeepsEveryLiveRecord) {
  ScopedPath P(tempStorePath("compact"));
  auto Store = openStore(P.Path);
  ASSERT_NE(Store, nullptr);
  const uint64_t N = 10;
  for (uint64_t I = 0; I < N; ++I)
    ASSERT_TRUE(Store->put(key(I), sampleResult(I)));
  // Manufacture garbage: append a corrupt frame by hand, then reopen so
  // the scan skips it.
  std::string Frame = ResultStore::encodeFrame(key(99), sampleResult(99));
  Frame[Frame.size() - 1] ^= 0x1;
  std::string Full = readFileBytes(P.Path);
  Store.reset();
  writeFileBytes(P.Path, Full + Frame);
  Store = openStore(P.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_GT(Store->stats().CorruptSkipped + Store->stats().TruncatedBytes,
            0u);
  uint64_t BytesBefore = Store->stats().Bytes;
  ASSERT_TRUE(Store->compactNow());
  StoreStats S = Store->stats();
  EXPECT_EQ(S.Compactions, 1u);
  EXPECT_EQ(S.Records, N);
  EXPECT_LT(S.Bytes, BytesBefore);
  EXPECT_EQ(S.Bytes, S.LiveBytes + 16 /* file header */);
  for (uint64_t I = 0; I < N; ++I) {
    auto Got = Store->get(key(I));
    ASSERT_NE(Got, nullptr) << "compaction lost record " << I;
    expectEqualResults(*Got, sampleResult(I));
  }
  // The compacted file is a valid store on its own.
  Store.reset();
  Store = openStore(P.Path);
  ASSERT_NE(Store, nullptr);
  EXPECT_EQ(Store->stats().Records, N);
  EXPECT_EQ(Store->stats().CorruptSkipped, 0u);
}

TEST(ResultStoreTest, ReadOnlyReaderFollowsWriterAppendsAndCompaction) {
  ScopedPath P(tempStorePath("shared"));
  auto Writer = openStore(P.Path, /*ReadOnly=*/false, /*FsyncBytes=*/0);
  ASSERT_NE(Writer, nullptr);
  ASSERT_TRUE(Writer->put(key(1), sampleResult(1)));
  auto Reader = openStore(P.Path, /*ReadOnly=*/true);
  ASSERT_NE(Reader, nullptr);
  EXPECT_TRUE(Reader->readOnly());
  ASSERT_NE(Reader->get(key(1)), nullptr);
  // put() is a no-op in read-only mode.
  EXPECT_FALSE(Reader->put(key(50), sampleResult(50)));
  // A record the writer appends after the reader opened becomes visible
  // through the miss-triggered refresh.
  ASSERT_TRUE(Writer->put(key(2), sampleResult(2)));
  auto Got = Reader->get(key(2));
  ASSERT_NE(Got, nullptr);
  expectEqualResults(*Got, sampleResult(2));
  // Compaction replaces the inode; the reader notices and rescans.
  ASSERT_TRUE(Writer->compactNow());
  ASSERT_TRUE(Writer->put(key(3), sampleResult(3)));
  Got = Reader->get(key(3));
  ASSERT_NE(Got, nullptr);
  expectEqualResults(*Got, sampleResult(3));
  ASSERT_NE(Reader->get(key(1)), nullptr);
}

TEST(ResultStoreTest, ConcurrentWritersAndReadersStayConsistent) {
  ScopedPath P(tempStorePath("threads"));
  auto Store = openStore(P.Path, /*ReadOnly=*/false, /*FsyncBytes=*/1 << 20);
  ASSERT_NE(Store, nullptr);
  const uint64_t PerThread = 64;
  const unsigned WriterThreads = 4;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < WriterThreads; ++T) {
    Threads.emplace_back([&, T] {
      for (uint64_t I = 0; I < PerThread; ++I) {
        uint64_t N = T * PerThread + I;
        EXPECT_TRUE(Store->put(key(N), sampleResult(N)));
        // Read back a key some thread may be writing right now: either
        // absent or byte-correct, never garbage.
        uint64_t Probe = (N * 7) % (WriterThreads * PerThread);
        if (auto Got = Store->get(key(Probe)))
          EXPECT_EQ(Got->RoutedQasm, sampleResult(Probe).RoutedQasm);
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  StoreStats S = Store->stats();
  EXPECT_EQ(S.Records, WriterThreads * PerThread);
  for (uint64_t N = 0; N < WriterThreads * PerThread; ++N) {
    auto Got = Store->get(key(N));
    ASSERT_NE(Got, nullptr) << "record " << N;
    expectEqualResults(*Got, sampleResult(N));
  }
}

TEST(ResultStoreTest, OpenRejectsNonStoreFiles) {
  ScopedPath P(tempStorePath("notastore"));
  writeFileBytes(P.Path, "this is definitely not a result store file");
  ResultStoreOptions Options;
  Options.Path = P.Path;
  Status Err;
  EXPECT_EQ(ResultStore::open(Options, Err), nullptr);
  EXPECT_FALSE(Err.ok());
  // Read-only open of a missing file fails instead of creating it.
  ResultStoreOptions Missing;
  Missing.Path = P.Path + ".missing";
  Missing.ReadOnly = true;
  Status MissingErr;
  EXPECT_EQ(ResultStore::open(Missing, MissingErr), nullptr);
  EXPECT_FALSE(MissingErr.ok());
}
