//===- tests/RoutingContextTest.cpp - shared precomputation layer tests -----------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/RoutingContext.h"

#include "baselines/RouterRegistry.h"
#include "baselines/Sabre.h"
#include "core/Qlosure.h"
#include "deps/TransitiveWeights.h"
#include "route/Verify.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

/// Routed results must match gate-for-gate, not just in aggregate.
void expectSameRouting(const RoutingResult &A, const RoutingResult &B) {
  EXPECT_EQ(A.NumSwaps, B.NumSwaps);
  EXPECT_EQ(A.Routed.depth(), B.Routed.depth());
  ASSERT_EQ(A.Routed.size(), B.Routed.size());
  for (size_t I = 0; I < A.Routed.size(); ++I) {
    EXPECT_EQ(A.Routed.gate(I).Kind, B.Routed.gate(I).Kind);
    EXPECT_EQ(A.Routed.gate(I).Qubits, B.Routed.gate(I).Qubits);
  }
  EXPECT_TRUE(A.FinalMapping == B.FinalMapping);
}

} // namespace

TEST(RoutingContextTest, BuildCachesDeviceConstants) {
  Circuit C = makeQft(8);
  CouplingGraph Hw = makeAspen16();
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  ASSERT_TRUE(Ctx.valid());
  EXPECT_EQ(&Ctx.circuit(), &C);
  EXPECT_EQ(Ctx.dag().numGates(), C.size());
  EXPECT_EQ(Ctx.maxDegree(), Hw.maxDegree());
  EXPECT_EQ(Ctx.defaultLookahead(), 2 * Hw.maxDegree() + 2);
  // The backend arrived with distances; the context references it.
  EXPECT_EQ(&Ctx.hardware(), &Hw);
}

TEST(RoutingContextTest, BuildDerivesMissingDistancesOnPrivateCopy) {
  Circuit C = makeGhz(5);
  CouplingGraph Hw(6, "bare-line");
  for (unsigned Q = 0; Q + 1 < 6; ++Q)
    Hw.addEdge(Q, Q + 1);
  ASSERT_FALSE(Hw.hasDistances());
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  ASSERT_TRUE(Ctx.valid());
  // The caller's graph is never mutated; the context routes anyway.
  EXPECT_FALSE(Hw.hasDistances());
  EXPECT_TRUE(Ctx.hardware().hasDistances());
  QlosureRouter Router;
  RoutingResult R = Router.routeWithIdentity(Ctx);
  EXPECT_TRUE(verifyRouting(C, Ctx.hardware(), R).Ok);
}

TEST(RoutingContextTest, LazyWeightsMatchDirectComputation) {
  Circuit C = makeQft(10);
  CouplingGraph Hw = makeAspen16();
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  const std::vector<uint64_t> &Cached = Ctx.dependenceWeights();
  // Second call returns the same memoized object.
  EXPECT_EQ(&Cached, &Ctx.dependenceWeights());
  EXPECT_EQ(Cached, computeDependenceWeights(C).Weights);
}

TEST(RoutingContextTest, ReuseAcrossRoutersMatchesFreshContexts) {
  Circuit C = makeQft(9);
  CouplingGraph Hw = makeAspen16();
  RoutingContext Shared = RoutingContext::build(C, Hw);

  QlosureRouter Qlosure;
  SabreRouter Sabre;
  // The shared context serves both routers, twice each, and matches both
  // a fresh context and the one-shot 3-arg adapter.
  for (Router *R : std::initializer_list<Router *>{&Qlosure, &Sabre}) {
    RoutingResult FromShared1 = R->routeWithIdentity(Shared);
    RoutingResult FromShared2 = R->routeWithIdentity(Shared);
    RoutingContext Fresh = RoutingContext::build(C, Hw, R->contextOptions());
    RoutingResult FromFresh = R->routeWithIdentity(Fresh);
    RoutingResult FromAdapter = R->routeWithIdentity(C, Hw);
    expectSameRouting(FromShared1, FromShared2);
    expectSameRouting(FromShared1, FromFresh);
    expectSameRouting(FromShared1, FromAdapter);
  }
}

TEST(RoutingContextTest, AllFiveRegistryRoutersRouteThroughContext) {
  Circuit C = makeQft(7);
  CouplingGraph Hw = makeGrid(3, 3);
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  ASSERT_TRUE(Ctx.valid());
  for (const std::string &Name : paperRouterNames()) {
    std::unique_ptr<Router> R = makeRouterByName(Name);
    RoutingResult Result = R->routeWithIdentity(Ctx);
    EXPECT_TRUE(verifyRouting(C, Ctx.hardware(), Result).Ok)
        << Name << " failed verification through the context API";
    expectSameRouting(Result, R->routeWithIdentity(C, Hw));
  }
}

TEST(RoutingContextTest, RejectsOversizedCircuit) {
  Circuit C = makeGhz(10);
  CouplingGraph Hw = makeLine(4);
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  EXPECT_FALSE(Ctx.valid());
  EXPECT_NE(Ctx.status().message().find("qubits"), std::string::npos);
}

TEST(RoutingContextTest, RejectsDisconnectedDevice) {
  Circuit C = makeGhz(3);
  CouplingGraph Hw(4, "two-islands");
  Hw.addEdge(0, 1);
  Hw.addEdge(2, 3);
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  EXPECT_FALSE(Ctx.valid());
  EXPECT_NE(Ctx.status().message().find("disconnected"), std::string::npos);
}

TEST(RoutingContextTest, RejectsThreeQubitGatesAndBarriers) {
  CouplingGraph Hw = makeLine(4);
  Circuit WithCcx(3, "ccx");
  WithCcx.addGate(Gate(GateKind::CCX, 0, 1, 2));
  EXPECT_FALSE(RoutingContext::build(WithCcx, Hw).valid());

  Circuit WithBarrier(2, "barrier");
  WithBarrier.add1Q(GateKind::H, 0);
  WithBarrier.addGate(Gate(GateKind::Barrier, 0));
  EXPECT_FALSE(RoutingContext::build(WithBarrier, Hw).valid());
}

TEST(RoutingContextTest, ValidateRejectsMismatchedMapping) {
  Circuit C = makeGhz(3);
  CouplingGraph Hw = makeLine(5);
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  ASSERT_TRUE(Ctx.valid());
  EXPECT_TRUE(Router::validate(Ctx, Ctx.identityMapping()).ok());
  // Wrong arity: a mapping sized for a different device.
  QubitMapping Wrong = QubitMapping::identity(3, 4);
  EXPECT_FALSE(Router::validate(Ctx, Wrong).ok());
}

//===----------------------------------------------------------------------===//
// CouplingGraph cache semantics backing the context layer
//===----------------------------------------------------------------------===//

TEST(CouplingGraphCacheTest, ComputeDistancesIsIdempotent) {
  CouplingGraph G = makeGrid(3, 3);
  std::vector<unsigned> Before;
  for (unsigned A = 0; A < G.numQubits(); ++A)
    for (unsigned B = 0; B < G.numQubits(); ++B)
      Before.push_back(G.distance(A, B));
  G.computeDistances(); // No-op on an unchanged graph.
  size_t I = 0;
  for (unsigned A = 0; A < G.numQubits(); ++A)
    for (unsigned B = 0; B < G.numQubits(); ++B)
      EXPECT_EQ(G.distance(A, B), Before[I++]);

  // Mutation invalidates, recomputation reflects the new edge.
  unsigned OldDist = G.distance(0, 8);
  G.addEdge(0, 8);
  EXPECT_FALSE(G.hasDistances());
  G.computeDistances();
  EXPECT_EQ(G.distance(0, 8), 1u);
  EXPECT_LT(G.distance(0, 8), OldDist);
}

TEST(CouplingGraphCacheTest, FlatEdgeErrorsRoundTrip) {
  CouplingGraph G = makeLine(4);
  EXPECT_FALSE(G.hasErrorModel());
  EXPECT_EQ(G.edgeError(0, 1), 0.0);
  G.setEdgeError(1, 2, 0.02);
  EXPECT_TRUE(G.hasErrorModel());
  EXPECT_DOUBLE_EQ(G.edgeError(1, 2), 0.02);
  EXPECT_DOUBLE_EQ(G.edgeError(2, 1), 0.02); // Symmetric lookup.
  EXPECT_EQ(G.edgeError(0, 1), 0.0);         // Uncalibrated edge.
  EXPECT_EQ(G.edgeError(0, 3), 0.0);         // Non-edge.
}

TEST(CouplingGraphCacheTest, WeightedDistancesCachePerPenalty) {
  CouplingGraph G = makeLine(4);
  applySyntheticErrorModel(G, /*Seed=*/42);
  ASSERT_TRUE(G.hasWeightedDistances());
  double D = G.weightedDistance(0, 3);
  G.computeWeightedDistances(); // Same default penalty: cached, unchanged.
  EXPECT_DOUBLE_EQ(G.weightedDistance(0, 3), D);
  G.computeWeightedDistances(/*Penalty=*/100.0); // New penalty: recompute.
  EXPECT_GT(G.weightedDistance(0, 3), D);

  // Topology mutation invalidates the weighted cache too; the shortcut
  // edge must show up after recomputation.
  G.addEdge(0, 3);
  EXPECT_FALSE(G.hasWeightedDistances());
  G.computeWeightedDistances();
  EXPECT_LT(G.weightedDistance(0, 3), D);
}
