OPENQASM 2.0;
include "qelib1.inc";
// Regression input for the lifter's non-unitary precheck: a GHZ ladder
// with a mid-circuit barrier and final measurements. liftCircuit must
// accept it (barriers lift like any kind); checkLiftable and
// RoutingContext::build must reject it with a recoverable Status.
qreg q[4];
creg c[4];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
barrier q;
cx q[2],q[3];
measure q[0] -> c[0];
measure q[1] -> c[1];
measure q[2] -> c[2];
measure q[3] -> c[3];
