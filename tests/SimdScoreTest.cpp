//===- tests/SimdScoreTest.cpp - Vectorized scoring byte-identity ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SIMD contract of core/SimdScore.h: every vectorized helper must be
/// **bit-identical** to its scalar fallback — the lanes mirror the scalar
/// formulas' exact operation order, so flipping simd::setEnabled() can
/// never change a routing decision. Unit-level checks cover the integer
/// reductions (odd tails, u64 accumulation) and the double-precision lane
/// kernels; the end-to-end check routes one workload through all five
/// mappers twice (scalar vs SIMD) and demands gate-for-gate identity.
/// Also here: FlatHashSet64, the epoch-stamped closed list the pooled
/// QMAP A* leans on.
///
/// Under -DQLOSURE_SIMD=OFF both passes run the same scalar loops and
/// every comparison is trivially true — the tests stay meaningful as a
/// fallback-build smoke, which is exactly what the CI leg wants.
///
//===----------------------------------------------------------------------===//

#include "core/SimdScore.h"

#include "baselines/CirqGreedy.h"
#include "baselines/QmapAstar.h"
#include "baselines/Sabre.h"
#include "baselines/TketBounded.h"
#include "core/Qlosure.h"
#include "route/RoutingScratch.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <vector>

using namespace qlosure;

namespace {

/// Restores the runtime SIMD toggle no matter how a test exits.
struct SimdGuard {
  ~SimdGuard() { simd::setEnabled(true); }
};

bool bitsEqual(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0);
}

} // namespace

TEST(SimdScoreTest, SumAndMaxMatchScalarOnEveryTailLength) {
  SimdGuard Guard;
  std::mt19937_64 Rng(7);
  // Values near the u32 ceiling: the sum must accumulate in u64 (four
  // such values already overflow u32), and the max must not be fooled by
  // the signed epi32 comparison shortcut (distances stay far below 2^31
  // in production, but the reduction itself is exercised here with
  // realistic magnitudes too).
  for (size_t N = 0; N <= 37; ++N) {
    std::vector<unsigned> V(N);
    for (unsigned &X : V)
      X = static_cast<unsigned>(Rng() % 100000);
    uint64_t WantSum = 0;
    unsigned WantMax = 0;
    for (unsigned X : V) {
      WantSum += X;
      WantMax = std::max(WantMax, X);
    }
    simd::setEnabled(false);
    EXPECT_EQ(simd::sumU32(V.data(), N), WantSum) << "scalar N=" << N;
    EXPECT_EQ(simd::maxU32(V.data(), N), WantMax) << "scalar N=" << N;
    simd::setEnabled(true);
    EXPECT_EQ(simd::sumU32(V.data(), N), WantSum) << "simd N=" << N;
    EXPECT_EQ(simd::maxU32(V.data(), N), WantMax) << "simd N=" << N;
  }
}

TEST(SimdScoreTest, DoubleLaneKernelsAreBitIdenticalToScalar) {
  SimdGuard Guard;
  std::mt19937_64 Rng(11);
  std::uniform_real_distribution<double> Dist(0.0, 3.0);
  // Odd lengths on purpose: every kernel has a scalar tail to get right.
  for (size_t N : {size_t(1), size_t(2), size_t(3), size_t(5), size_t(8),
                   size_t(13), size_t(31)}) {
    std::vector<double> Adj(N), Front(N), Ext(N), Max(N), Decay(N);
    for (size_t I = 0; I < N; ++I) {
      Adj[I] = Dist(Rng);
      Front[I] = Dist(Rng);
      Ext[I] = Dist(Rng);
      Max[I] = Dist(Rng);
      Decay[I] = 1.0 + Dist(Rng) / 10;
    }
    const double Base = 1.7, Layer = 0.3, Count = 4.0, NF = 5.0, NE = 7.0,
                 W = 0.5;

    auto runAll = [&](bool Simd) {
      simd::setEnabled(Simd);
      std::vector<std::vector<double>> Out;
      std::vector<double> Acc(N, 0.25);
      simd::qlosureLayerAccum(Acc.data(), Adj.data(), Base, Layer, Count, N);
      Out.push_back(Acc);
      std::vector<double> Dec = Front;
      simd::applyDecayLanes(Dec.data(), Decay.data(), N);
      Out.push_back(Dec);
      for (bool HasExt : {false, true}) {
        std::vector<double> Sabre(N);
        simd::sabreScoreLanes(Sabre.data(), Front.data(), Ext.data(),
                              Decay.data(), NF, NE, W, HasExt, N);
        Out.push_back(Sabre);
      }
      std::vector<double> Cirq(N);
      simd::cirqScoreLanes(Cirq.data(), Front.data(), Ext.data(), W, N);
      Out.push_back(Cirq);
      std::vector<double> Tket(N);
      simd::tketScoreLanes(Tket.data(), Front.data(), Ext.data(), Max.data(),
                           W, N);
      Out.push_back(Tket);
      return Out;
    };

    auto Scalar = runAll(false);
    auto Simd = runAll(true);
    ASSERT_EQ(Scalar.size(), Simd.size());
    for (size_t K = 0; K < Scalar.size(); ++K)
      EXPECT_TRUE(bitsEqual(Scalar[K], Simd[K]))
          << "kernel " << K << " diverges at N=" << N;
  }
}

TEST(SimdScoreTest, AllMappersRouteIdenticallyWithAndWithoutSimd) {
  SimdGuard Guard;
  CouplingGraph Gen = makeAspen16();
  CouplingGraph Backend = makeBackendByName("aspen16");
  QuekoSpec Spec;
  Spec.Depth = 60;
  Spec.Seed = 2026;
  QuekoInstance Inst = generateQueko(Gen, Spec);
  RoutingContext Ctx = RoutingContext::build(Inst.Circ, Backend);

  std::vector<std::unique_ptr<Router>> Mappers;
  Mappers.push_back(std::make_unique<QlosureRouter>());
  Mappers.push_back(std::make_unique<SabreRouter>());
  QmapOptions Qmap;
  Qmap.TimeBudgetSeconds = 1e9; // Unlimited: decisions must match exactly.
  Mappers.push_back(std::make_unique<QmapAstarRouter>(Qmap));
  Mappers.push_back(std::make_unique<CirqGreedyRouter>());
  Mappers.push_back(std::make_unique<TketBoundedRouter>());

  RoutingScratch Scratch;
  for (const auto &Mapper : Mappers) {
    simd::setEnabled(false);
    RoutingResult Scalar = Mapper->routeWithIdentity(Ctx, Scratch);
    simd::setEnabled(true);
    RoutingResult Simd = Mapper->routeWithIdentity(Ctx, Scratch);

    ASSERT_EQ(Scalar.NumSwaps, Simd.NumSwaps) << Mapper->name();
    ASSERT_EQ(Scalar.Routed.size(), Simd.Routed.size()) << Mapper->name();
    for (size_t I = 0; I < Scalar.Routed.size(); ++I) {
      const Gate &A = Scalar.Routed.gate(I);
      const Gate &B = Simd.Routed.gate(I);
      ASSERT_TRUE(A.Kind == B.Kind && A.Qubits == B.Qubits &&
                  A.Params == B.Params)
          << Mapper->name() << " gate " << I;
    }
    EXPECT_TRUE(Scalar.FinalMapping == Simd.FinalMapping) << Mapper->name();
    EXPECT_EQ(Scalar.InsertedSwapFlags, Simd.InsertedSwapFlags)
        << Mapper->name();
  }
}

TEST(FlatHashSet64Test, MatchesUnorderedSetSemantics) {
  FlatHashSet64 Set;
  Set.clear();
  EXPECT_EQ(Set.size(), 0u);
  EXPECT_FALSE(Set.contains(42));
  EXPECT_TRUE(Set.insert(42));
  EXPECT_FALSE(Set.insert(42)) << "duplicate insert must report existing";
  EXPECT_TRUE(Set.contains(42));
  EXPECT_EQ(Set.size(), 1u);

  // Keys that collide in the low bits exercise linear probing.
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_TRUE(Set.insert(42 + (I + 1) * 1024));
  EXPECT_EQ(Set.size(), 9u);
  for (uint64_t I = 0; I < 8; ++I)
    EXPECT_TRUE(Set.contains(42 + (I + 1) * 1024));
}

TEST(FlatHashSet64Test, ClearIsEpochBumpNotRefill) {
  FlatHashSet64 Set;
  Set.clear();
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_TRUE(Set.insert(I * 0x9E3779B97F4A7C15ull));
  Set.clear();
  EXPECT_EQ(Set.size(), 0u);
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_FALSE(Set.contains(I * 0x9E3779B97F4A7C15ull))
        << "a cleared set answers empty";
  // Stale slots from the previous epoch must not block reinsertion.
  for (uint64_t I = 0; I < 100; ++I)
    EXPECT_TRUE(Set.insert(I * 0x9E3779B97F4A7C15ull));
  EXPECT_EQ(Set.size(), 100u);
}

TEST(FlatHashSet64Test, GrowthPreservesMembership) {
  // Past load factor 0.5 of the initial 1024-slot table the set rehashes;
  // every live key must survive and no ghost keys may appear.
  FlatHashSet64 Set;
  Set.clear();
  std::mt19937_64 Rng(3);
  std::vector<uint64_t> Keys;
  for (size_t I = 0; I < 2000; ++I)
    Keys.push_back(Rng());
  for (uint64_t K : Keys)
    EXPECT_TRUE(Set.insert(K));
  EXPECT_EQ(Set.size(), Keys.size());
  for (uint64_t K : Keys)
    EXPECT_TRUE(Set.contains(K));
  std::mt19937_64 Other(4);
  for (size_t I = 0; I < 1000; ++I)
    EXPECT_FALSE(Set.contains(Other() | (1ull << 63)))
        << "rehash must not invent members";
}
