//===- tests/RouteTest.cpp - routing framework tests ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "route/FrontLayer.h"
#include "route/InitialMapping.h"
#include "route/QubitMapping.h"
#include "route/Verify.h"
#include "core/Qlosure.h"
#include "support/Random.h"
#include "topology/Backends.h"

#include <gtest/gtest.h>

using namespace qlosure;

//===----------------------------------------------------------------------===//
// QubitMapping
//===----------------------------------------------------------------------===//

TEST(QubitMappingTest, IdentityRoundTrip) {
  QubitMapping M = QubitMapping::identity(3, 5);
  for (int32_t Q = 0; Q < 3; ++Q) {
    EXPECT_EQ(M.physOf(Q), Q);
    EXPECT_EQ(M.logOf(Q), Q);
  }
  EXPECT_EQ(M.logOf(4), -1); // Free physical qubit.
  M.verifyConsistency();
}

TEST(QubitMappingTest, SwapUpdatesBothDirections) {
  QubitMapping M = QubitMapping::identity(2, 3);
  M.swapPhysical(0, 2); // Logical 0 moves to physical 2.
  EXPECT_EQ(M.physOf(0), 2);
  EXPECT_EQ(M.logOf(2), 0);
  EXPECT_EQ(M.logOf(0), -1);
  M.verifyConsistency();
}

TEST(QubitMappingTest, SwapTwoOccupied) {
  QubitMapping M = QubitMapping::identity(2, 2);
  M.swapPhysical(0, 1);
  EXPECT_EQ(M.physOf(0), 1);
  EXPECT_EQ(M.physOf(1), 0);
  M.verifyConsistency();
}

TEST(QubitMappingTest, RandomIsInjective) {
  Rng Generator(3);
  QubitMapping M = QubitMapping::random(10, 20, Generator);
  M.verifyConsistency();
  std::vector<bool> Used(20, false);
  for (int32_t Q = 0; Q < 10; ++Q) {
    int32_t P = M.physOf(Q);
    EXPECT_FALSE(Used[static_cast<size_t>(P)]);
    Used[static_cast<size_t>(P)] = true;
  }
}

//===----------------------------------------------------------------------===//
// FrontLayerTracker
//===----------------------------------------------------------------------===//

TEST(FrontLayerTest, InitialFrontIsRoots) {
  Circuit C(4);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(1, 2);
  CircuitDag Dag(C);
  RoutingScratch Scratch;
  FrontLayerTracker T(Dag, Scratch);
  std::vector<uint32_t> Front = T.front();
  std::sort(Front.begin(), Front.end());
  EXPECT_EQ(Front, (std::vector<uint32_t>{0, 1}));
}

TEST(FrontLayerTest, ExecutionReleasesSuccessors) {
  Circuit C(4);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(1, 2);
  CircuitDag Dag(C);
  RoutingScratch Scratch;
  FrontLayerTracker T(Dag, Scratch);
  T.execute(0);
  EXPECT_FALSE(T.isInFront(2)); // Still blocked by gate 1.
  T.execute(1);
  EXPECT_TRUE(T.isInFront(2));
  T.execute(2);
  EXPECT_TRUE(T.allExecuted());
}

TEST(FrontLayerTest, TopologicalWindowOrder) {
  Circuit C(2);
  for (int I = 0; I < 6; ++I)
    C.addCx(0, 1);
  CircuitDag Dag(C);
  RoutingScratch Scratch;
  FrontLayerTracker T(Dag, Scratch);
  auto Window = T.topologicalWindow(4);
  EXPECT_EQ(Window, (std::vector<uint32_t>{0, 1, 2, 3}));
  T.execute(0);
  Window = T.topologicalWindow(2);
  EXPECT_EQ(Window, (std::vector<uint32_t>{1, 2}));
}

TEST(FrontLayerTest, WindowRespectsCrossDependences) {
  Circuit C(6);
  C.addCx(0, 1); // 0.
  C.addCx(2, 3); // 1.
  C.addCx(1, 2); // 2: needs both.
  C.addCx(4, 5); // 3: independent root... but in program order later.
  CircuitDag Dag(C);
  RoutingScratch Scratch;
  FrontLayerTracker T(Dag, Scratch);
  auto Window = T.topologicalWindow(10);
  EXPECT_EQ(Window.size(), 4u);
  // Gate 2 must appear after gates 0 and 1.
  auto Pos = [&](uint32_t G) {
    return std::find(Window.begin(), Window.end(), G) - Window.begin();
  };
  EXPECT_GT(Pos(2), Pos(0));
  EXPECT_GT(Pos(2), Pos(1));
}

//===----------------------------------------------------------------------===//
// reverseCircuit / bidirectional mapping
//===----------------------------------------------------------------------===//

TEST(InitialMappingTest, ReverseCircuitReverses) {
  Circuit C(3);
  C.addCx(0, 1);
  C.add1Q(GateKind::H, 2);
  Circuit R = reverseCircuit(C);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R.gate(0).Kind, GateKind::H);
  EXPECT_EQ(R.gate(1).Kind, GateKind::CX);
}

TEST(InitialMappingTest, BidirectionalMappingIsConsistent) {
  CouplingGraph Hw = makeLine(6);
  Circuit C(6);
  for (int I = 0; I < 5; ++I)
    C.addCx(0, 5 - I); // Long-range traffic benefits from placement.
  QlosureRouter Router;
  QubitMapping M = deriveBidirectionalMapping(Router, C, Hw, 1);
  M.verifyConsistency();
  EXPECT_EQ(M.numLogical(), 6u);
  EXPECT_EQ(M.numPhysical(), 6u);
}

//===----------------------------------------------------------------------===//
// verifyRouting negative cases
//===----------------------------------------------------------------------===//

namespace {

RoutingResult routeSmall(const Circuit &C, const CouplingGraph &Hw) {
  QlosureRouter Router;
  return Router.routeWithIdentity(C, Hw);
}

Circuit lineCircuit() {
  Circuit C(4, "line-traffic");
  C.addCx(0, 3);
  C.addCx(1, 2);
  C.addCx(0, 1);
  return C;
}

} // namespace

TEST(VerifyTest, AcceptsValidRouting) {
  CouplingGraph Hw = makeLine(4);
  Circuit C = lineCircuit();
  RoutingResult R = routeSmall(C, Hw);
  VerifyResult V = verifyRouting(C, Hw, R);
  EXPECT_TRUE(V.Ok) << V.Message;
}

TEST(VerifyTest, RejectsNonAdjacentGate) {
  CouplingGraph Hw = makeLine(4);
  Circuit C = lineCircuit();
  RoutingResult R = routeSmall(C, Hw);
  // Corrupt: retarget a program gate to distant qubits.
  Circuit Bad(Hw.numQubits(), R.Routed.name());
  for (size_t I = 0; I < R.Routed.size(); ++I) {
    Gate G = R.Routed.gate(I);
    if (G.isTwoQubit() && !R.InsertedSwapFlags[I]) {
      G.Qubits[0] = 0;
      G.Qubits[1] = 3;
    }
    Bad.addGate(G);
  }
  R.Routed = Bad;
  EXPECT_FALSE(verifyRouting(C, Hw, R).Ok);
}

TEST(VerifyTest, RejectsDroppedGate) {
  CouplingGraph Hw = makeLine(4);
  Circuit C = lineCircuit();
  RoutingResult R = routeSmall(C, Hw);
  // Drop the last program gate.
  Circuit Short(Hw.numQubits());
  std::vector<uint8_t> Flags;
  for (size_t I = 0; I + 1 < R.Routed.size(); ++I) {
    Short.addGate(R.Routed.gate(I));
    Flags.push_back(R.InsertedSwapFlags[I]);
  }
  R.Routed = Short;
  R.InsertedSwapFlags = Flags;
  EXPECT_FALSE(verifyRouting(C, Hw, R).Ok);
}

TEST(VerifyTest, RejectsWrongSwapCount) {
  CouplingGraph Hw = makeLine(4);
  Circuit C = lineCircuit();
  RoutingResult R = routeSmall(C, Hw);
  R.NumSwaps += 1;
  EXPECT_FALSE(verifyRouting(C, Hw, R).Ok);
}

TEST(VerifyTest, RejectsCorruptedFinalMapping) {
  CouplingGraph Hw = makeLine(4);
  Circuit C = lineCircuit();
  RoutingResult R = routeSmall(C, Hw);
  ASSERT_GT(R.NumSwaps, 0u); // Routing this circuit on a line needs swaps.
  R.FinalMapping.swapPhysical(0, 3);
  EXPECT_FALSE(verifyRouting(C, Hw, R).Ok);
}

TEST(VerifyTest, RejectsReorderedDependentGates) {
  CouplingGraph Hw = makeLine(3);
  Circuit C(3);
  C.add1Q(GateKind::H, 0);
  C.add1Q(GateKind::X, 0); // Depends on the H.
  QlosureRouter Router;
  RoutingResult R = Router.routeWithIdentity(C, Hw);
  // Swap the two gates: per-wire order breaks.
  std::swap(R.Routed.gatesMutable()[0], R.Routed.gatesMutable()[1]);
  EXPECT_FALSE(verifyRouting(C, Hw, R).Ok);
}
