//===- tests/AffineReplayTest.cpp - Affine fast-path tests ------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the affine routing fast path: period detection on lifted
/// traces, presburger permutation extraction, and the replay engine's
/// byte-identity contract — routing with AffineReplay on must produce
/// exactly the result of the scalar kernel, whatever fraction of the
/// periods actually replayed.
///
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "affine/PeriodDetector.h"
#include "core/Qlosure.h"
#include "presburger/Permutation.h"
#include "route/ReplayPlan.h"
#include "route/Verify.h"
#include "support/Random.h"
#include "topology/Backends.h"
#include "workloads/Structured.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

/// Structural equality of two routing results (the replay contract).
void expectIdentical(const RoutingResult &A, const RoutingResult &B) {
  ASSERT_EQ(A.Routed.size(), B.Routed.size());
  EXPECT_EQ(A.NumSwaps, B.NumSwaps);
  for (size_t I = 0; I < A.Routed.size(); ++I) {
    const Gate &GA = A.Routed.gate(I);
    const Gate &GB = B.Routed.gate(I);
    ASSERT_EQ(GA.Kind, GB.Kind) << "gate " << I;
    ASSERT_EQ(GA.Qubits, GB.Qubits) << "gate " << I;
    ASSERT_EQ(GA.Params, GB.Params) << "gate " << I;
  }
  EXPECT_EQ(A.InsertedSwapFlags, B.InsertedSwapFlags);
  EXPECT_TRUE(A.FinalMapping == B.FinalMapping);
}

Circuit randomUnitary(unsigned NumQubits, size_t NumGates, uint64_t Seed) {
  Rng Generator(Seed);
  Circuit C(NumQubits, "random");
  for (size_t I = 0; I < NumGates; ++I) {
    if (Generator.nextBernoulli(0.7)) {
      int32_t A = static_cast<int32_t>(Generator.nextBounded(NumQubits));
      int32_t B;
      do {
        B = static_cast<int32_t>(Generator.nextBounded(NumQubits));
      } while (B == A);
      C.addCx(A, B);
    } else {
      C.add1Q(GateKind::H,
              static_cast<int32_t>(Generator.nextBounded(NumQubits)));
    }
  }
  return C;
}

QlosureOptions replayProfile(bool AffineReplay) {
  QlosureOptions O;
  // The symbolic-replay profile: omega is aperiodic by construction, so
  // the weighted configuration would fall back on nearly every period.
  O.UseDependencyWeights = false;
  O.AffineReplay = AffineReplay;
  return O;
}

} // namespace

//===----------------------------------------------------------------------===//
// Workload generators
//===----------------------------------------------------------------------===//

TEST(StructuredWorkloadTest, CyclicShiftWraps) {
  std::vector<int32_t> P = cyclicShiftPermutation(5, 2);
  EXPECT_EQ(P, (std::vector<int32_t>{2, 3, 4, 0, 1}));
  std::vector<int32_t> N = cyclicShiftPermutation(5, -1);
  EXPECT_EQ(N, (std::vector<int32_t>{4, 0, 1, 2, 3}));
}

TEST(StructuredWorkloadTest, RepeatComposesPermutationPowers) {
  Circuit Body(4, "b");
  Body.addCx(0, 1);
  Body.add1Q(GateKind::H, 3);
  Circuit Rep =
      repeatWithPermutation(Body, cyclicShiftPermutation(4, 1), 3, "rep");
  ASSERT_EQ(Rep.size(), 6u);
  // Iteration 1: shift by one; iteration 2: shift by two.
  EXPECT_EQ(Rep.gate(2).Qubits[0], 1);
  EXPECT_EQ(Rep.gate(2).Qubits[1], 2);
  EXPECT_EQ(Rep.gate(3).Qubits[0], 0); // (3 + 1) mod 4
  EXPECT_EQ(Rep.gate(4).Qubits[0], 2);
  EXPECT_EQ(Rep.gate(4).Qubits[1], 3);
  EXPECT_EQ(Rep.gate(5).Qubits[0], 1);
}

//===----------------------------------------------------------------------===//
// Period detection
//===----------------------------------------------------------------------===//

TEST(PeriodDetectorTest, PureRepetitionIdentityPerm) {
  Circuit Circ = qftLikeKernel(8, 6);
  std::optional<PeriodStructure> P = detectPeriod(Circ);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->RegionStart, 0);
  EXPECT_EQ(P->BodyGates, 16); // 8 H + 7 CP + 1 wrap CP.
  EXPECT_EQ(P->NumPeriods, 6);
  EXPECT_EQ(P->regionEnd(), static_cast<int64_t>(Circ.size()));
  for (size_t Q = 0; Q < P->Perm.size(); ++Q)
    EXPECT_EQ(P->Perm[Q], static_cast<int32_t>(Q));
}

TEST(PeriodDetectorTest, ShiftedRepetitionRecoversShift) {
  Circuit Body(6, "b");
  for (int32_t Q = 0; Q + 1 < 6; ++Q)
    Body.addCx(Q, Q + 1);
  Circuit Circ =
      repeatWithPermutation(Body, cyclicShiftPermutation(6, 1), 5, "shift");
  std::optional<PeriodStructure> P = detectPeriod(Circ);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->BodyGates, 5);
  EXPECT_EQ(P->NumPeriods, 5);
  EXPECT_EQ(P->Perm, cyclicShiftPermutation(6, 1));
}

TEST(PeriodDetectorTest, PrologueBeforeRegion) {
  Circuit Circ(8, "prologued");
  Circ.addCx(7, 2); // Breaks any affine run the body starts.
  Circ.add1Q(GateKind::X, 5);
  Circuit Body = qftLikeKernel(8, 5);
  for (const Gate &G : Body.gates())
    Circ.addGate(G);
  std::optional<PeriodStructure> P = detectPeriod(Circ);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->RegionStart, 2);
  EXPECT_EQ(P->BodyGates, 16);
  EXPECT_EQ(P->NumPeriods, 5);
}

TEST(PeriodDetectorTest, RejectsUnstructured) {
  Circuit Circ = randomUnitary(10, 400, 99);
  EXPECT_FALSE(detectPeriod(Circ).has_value());
}

TEST(PeriodDetectorTest, RejectsTooFewPeriods) {
  Circuit Circ = qftLikeKernel(8, 2); // Below MinPeriods = 3.
  EXPECT_FALSE(detectPeriod(Circ).has_value());
}

TEST(PeriodDetectorTest, ToleratesAperiodicTail) {
  Circuit Circ = qftLikeKernel(8, 8);
  size_t RegionGates = Circ.size();
  Circuit Tail = randomUnitary(8, 40, 7);
  for (const Gate &G : Tail.gates())
    Circ.addGate(G);
  std::optional<PeriodStructure> P = detectPeriod(Circ);
  ASSERT_TRUE(P.has_value());
  EXPECT_EQ(P->regionEnd(), static_cast<int64_t>(RegionGates));
}

//===----------------------------------------------------------------------===//
// Presburger permutation extraction
//===----------------------------------------------------------------------===//

TEST(PermutationExtractTest, FromAccessRelations) {
  // Two aligned strided statements: CX(i, i+1) for i in [0,4) vs the same
  // run shifted up by one qubit. reverse(A) . A' maps i-th operand of the
  // first run to the i-th operand of the second: q -> q + 1 on [0,5).
  Circuit First(8, "a");
  for (int32_t I = 0; I < 4; ++I)
    First.addCx(I, I + 1);
  for (int32_t I = 0; I < 4; ++I)
    First.addCx(I + 1, I + 2);
  AffineCircuit AC = liftCircuit(First);
  ASSERT_EQ(AC.numStatements(), 2u);
  presburger::IntegerMap Rel(1, 1);
  for (unsigned Op = 0; Op < 2; ++Op)
    Rel = Rel.unionWith(AC.accessRelation(0, Op).reverse().composeWith(
        AC.accessRelation(1, Op)));
  std::optional<std::vector<int32_t>> Perm =
      presburger::extractPermutation(Rel, 8);
  ASSERT_TRUE(Perm.has_value());
  for (int32_t Q = 0; Q < 5; ++Q)
    EXPECT_EQ((*Perm)[static_cast<size_t>(Q)], Q + 1);
  // Unconstrained qubits complete deterministically into a bijection.
  std::vector<uint8_t> Seen(8, 0);
  for (int32_t Image : *Perm) {
    ASSERT_GE(Image, 0);
    ASSERT_LT(Image, 8);
    EXPECT_FALSE(Seen[static_cast<size_t>(Image)]);
    Seen[static_cast<size_t>(Image)] = 1;
  }
}

TEST(PermutationExtractTest, RejectsNonInjective) {
  // i -> 0 for all i: functional but not injective.
  Circuit C(4, "ni");
  for (int32_t I = 1; I < 4; ++I)
    C.addCx(I, 0); // Operand 1 accesses constant 0; operand 0 is i.
  AffineCircuit AC = liftCircuit(C);
  ASSERT_GE(AC.numStatements(), 1u);
  // Map both operands of the statement onto operand 1 (the constant):
  // sources 1..3 all map to 0.
  presburger::IntegerMap Rel =
      AC.accessRelation(0, 0).reverse().composeWith(AC.accessRelation(0, 1));
  EXPECT_FALSE(presburger::extractPermutation(Rel, 4).has_value());
}

//===----------------------------------------------------------------------===//
// Replay engine
//===----------------------------------------------------------------------===//

TEST(AffineReplayTest, ByteIdenticalOnQftKernel) {
  Circuit Circ = qftLikeKernel(16, 40);
  CouplingGraph Hw = makeLine(16);

  QlosureRouter Scalar(replayProfile(false));
  QlosureRouter Fast(replayProfile(true));
  RoutingResult A = Scalar.routeWithIdentity(Circ, Hw);
  RoutingResult B = Fast.routeWithIdentity(Circ, Hw);

  expectIdentical(A, B);
  EXPECT_EQ(A.AffineReplayedPeriods, 0u);
  EXPECT_EQ(A.AffineFallbackPeriods, 0u);
  EXPECT_GT(B.AffineReplayedPeriods, 0u) << "no period ever replayed";
  EXPECT_LE(B.AffineReplayedPeriods + B.AffineFallbackPeriods, 40u);

  VerifyResult V = verifyRouting(Circ, Hw, B);
  EXPECT_TRUE(V.Ok) << V.Message;
}

TEST(AffineReplayTest, ByteIdenticalOnConveyor) {
  CouplingGraph Gen = makeGrid(4, 4);
  Circuit Circ = layeredConveyor(Gen, 3, 30, 17);
  CouplingGraph Hw = makeGrid(4, 4);

  RoutingResult A =
      QlosureRouter(replayProfile(false)).routeWithIdentity(Circ, Hw);
  RoutingResult B =
      QlosureRouter(replayProfile(true)).routeWithIdentity(Circ, Hw);
  expectIdentical(A, B);
  VerifyResult V = verifyRouting(Circ, Hw, B);
  EXPECT_TRUE(V.Ok) << V.Message;
}

TEST(AffineReplayTest, WarmContextCacheReplaysSecondRoute) {
  Circuit Circ = qftLikeKernel(12, 24);
  CouplingGraph Hw = makeLine(12);
  QlosureRouter Fast(replayProfile(true));
  RoutingContext Ctx =
      RoutingContext::build(Circ, Hw, Fast.contextOptions());
  ASSERT_TRUE(Ctx.valid());

  RoutingResult Cold = Fast.routeWithIdentity(Ctx);
  RoutingResult Warm = Fast.routeWithIdentity(Ctx);
  expectIdentical(Cold, Warm);
  // The second route finds every plan the first one recorded.
  EXPECT_GE(Warm.AffineReplayedPeriods, Cold.AffineReplayedPeriods);
  EXPECT_GT(Warm.AffineReplayedPeriods, 0u);
}

TEST(AffineReplayTest, UnstructuredInputIsUntouched) {
  Circuit Circ = randomUnitary(12, 500, 3);
  CouplingGraph Hw = makeGrid(3, 4);
  RoutingResult A =
      QlosureRouter(replayProfile(false)).routeWithIdentity(Circ, Hw);
  RoutingResult B =
      QlosureRouter(replayProfile(true)).routeWithIdentity(Circ, Hw);
  expectIdentical(A, B);
  EXPECT_EQ(B.AffineReplayedPeriods, 0u);
  EXPECT_EQ(B.AffineFallbackPeriods, 0u);
}

TEST(AffineReplayTest, AperiodicTailFallsBackExactly) {
  Circuit Circ = qftLikeKernel(10, 20);
  Circuit Tail = randomUnitary(10, 60, 11);
  for (const Gate &G : Tail.gates())
    Circ.addGate(G);
  CouplingGraph Hw = makeLine(10);
  RoutingResult A =
      QlosureRouter(replayProfile(false)).routeWithIdentity(Circ, Hw);
  RoutingResult B =
      QlosureRouter(replayProfile(true)).routeWithIdentity(Circ, Hw);
  expectIdentical(A, B);
  VerifyResult V = verifyRouting(Circ, Hw, B);
  EXPECT_TRUE(V.Ok) << V.Message;
}

TEST(AffineReplayTest, WeightedProfileStaysExact) {
  // With dependency weights on, omega decreases across periods, so the
  // weight-slice gate rejects most replays — but whatever replays or
  // falls back, the result must stay byte-identical.
  Circuit Circ = qftLikeKernel(12, 20);
  CouplingGraph Hw = makeLine(12);
  QlosureOptions Base; // Weighted default profile.
  QlosureOptions Replay = Base;
  Replay.AffineReplay = true;
  RoutingResult A = QlosureRouter(Base).routeWithIdentity(Circ, Hw);
  RoutingResult B = QlosureRouter(Replay).routeWithIdentity(Circ, Hw);
  expectIdentical(A, B);
}

TEST(AffineReplayTest, SeedsDoNotBreakIdentity) {
  Circuit Circ = qftLikeKernel(12, 16);
  CouplingGraph Hw = makeRing(12);
  for (uint64_t Seed : {1ull, 42ull, 0xDEADBEEFull}) {
    QlosureOptions Off = replayProfile(false);
    Off.Seed = Seed;
    QlosureOptions On = replayProfile(true);
    On.Seed = Seed;
    RoutingResult A = QlosureRouter(Off).routeWithIdentity(Circ, Hw);
    RoutingResult B = QlosureRouter(On).routeWithIdentity(Circ, Hw);
    expectIdentical(A, B);
  }
}

TEST(AffineReplayTest, PlanCacheFirstPublisherWins) {
  ReplayPlanCache Cache;
  AnchorKey Key;
  Key.Data = {1, 2, 3};
  Key.Hash = 42;
  auto PlanA = std::make_shared<ReplayPlan>();
  PlanA->Key = Key;
  PlanA->RecordBase = 10;
  auto PlanB = std::make_shared<ReplayPlan>();
  PlanB->Key = Key;
  PlanB->RecordBase = 20;
  Cache.publish(PlanA);
  Cache.publish(PlanB);
  EXPECT_EQ(Cache.size(), 1u);
  std::shared_ptr<const ReplayPlan> Found = Cache.lookup(Key);
  ASSERT_TRUE(Found);
  EXPECT_EQ(Found->RecordBase, 10);
  // Same hash, different data: a separate entry, not a collision hit.
  AnchorKey Other;
  Other.Data = {4, 5};
  Other.Hash = 42;
  EXPECT_EQ(Cache.lookup(Other), nullptr);
}

TEST(AffineReplayTest, ContextMemoizesPeriodStructure) {
  Circuit Circ = qftLikeKernel(8, 5);
  CouplingGraph Hw = makeLine(8);
  RoutingContext Ctx = RoutingContext::build(Circ, Hw);
  ASSERT_TRUE(Ctx.valid());
  const PeriodStructure *P1 = Ctx.periodStructure();
  const PeriodStructure *P2 = Ctx.periodStructure();
  ASSERT_NE(P1, nullptr);
  EXPECT_EQ(P1, P2);
  EXPECT_EQ(P1->BodyGates, 16);
  EXPECT_EQ(&Ctx.replayPlanCache(), &Ctx.replayPlanCache());
}
