//===- tests/DependenceTest.cpp - affine dependence analysis tests ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "circuit/Dag.h"
#include "deps/DependenceAnalysis.h"
#include "deps/TransitiveWeights.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"
#include "topology/Backends.h"

#include <gtest/gtest.h>

using namespace qlosure;
using namespace qlosure::presburger;

TEST(DependenceTest, SelfDependenceOnSlidingChain) {
  // CX(i, i+1) for i in 0..5: instance i and i+1 share qubit i+1, giving
  // the uniform self-dependence { [i] -> [i+1] }.
  Circuit C(7);
  for (int I = 0; I < 6; ++I)
    C.addCx(I, I + 1);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 1u);
  IntegerMap Rel = buildPairDependence(AC, 0, 0);
  EXPECT_FALSE(Rel.isEmptyUnion());
  EXPECT_TRUE(Rel.contains({0}, {1}));
  EXPECT_TRUE(Rel.contains({4}, {5}));
  EXPECT_FALSE(Rel.contains({1}, {0})); // Time order.
  EXPECT_FALSE(Rel.contains({0}, {2})); // Not a direct dependence.
}

TEST(DependenceTest, CrossStatementDependence) {
  Circuit C(8);
  for (int I = 0; I < 4; ++I) // S0: CX(i, i+4).
    C.addCx(I, I + 4);
  for (int I = 0; I < 4; ++I) // S1: CZ(i, i+4) reuses every qubit.
    C.add2Q(GateKind::CZ, I, I + 4);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  IntegerMap Rel = buildPairDependence(AC, 0, 1);
  // Instance i of S0 and instance i of S1 share both qubits.
  EXPECT_TRUE(Rel.contains({0}, {0}));
  EXPECT_TRUE(Rel.contains({3}, {3}));
  EXPECT_FALSE(Rel.contains({2}, {1})); // Disjoint qubits.
  // No dependence back from S1 to S0.
  EXPECT_TRUE(buildPairDependence(AC, 1, 0).isEmptyUnion());
}

TEST(DependenceTest, DisjointQubitRangesHaveNoDependence) {
  Circuit C(12);
  for (int I = 0; I < 3; ++I)
    C.addCx(I, I + 1);
  for (int I = 8; I < 11; ++I)
    C.addCx(I, I + 1);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_TRUE(buildPairDependence(AC, 0, 1).isEmptyUnion());
}

TEST(DependenceTest, GcdPrecheckFiltersParityMiss) {
  // S0 touches even qubits only, S1 odd qubits only.
  Circuit C(16);
  for (int I = 0; I < 4; ++I)
    C.addCx(2 * I, 2 * I + 8);
  for (int I = 0; I < 3; ++I)
    C.add2Q(GateKind::CZ, 2 * I + 1, 2 * I + 3);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_TRUE(buildPairDependence(AC, 0, 1).isEmptyUnion());
}

TEST(DependenceTest, ReachabilityIsTransitive) {
  // Three chained statements on overlapping qubit windows.
  Circuit C(10);
  for (int I = 0; I < 3; ++I)
    C.addCx(I, I + 1);
  for (int I = 3; I < 6; ++I)
    C.add2Q(GateKind::CZ, I, I + 1);
  for (int I = 6; I < 9; ++I)
    C.add2Q(GateKind::RZZ, I, I + 1);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 3u);
  AffineDependences Deps(AC);
  // S0 -> S1 (qubit 3 and 4 shared), S1 -> S2 (qubit 6 shared), so S2 is
  // transitively reachable from S0.
  const auto &Reach0 = Deps.reachable()[0];
  EXPECT_NE(std::find(Reach0.begin(), Reach0.end(), 1u), Reach0.end());
  EXPECT_NE(std::find(Reach0.begin(), Reach0.end(), 2u), Reach0.end());
  // Nothing reaches backwards: S2 reaches at most itself (its RZZ chain
  // has a self-dependence).
  for (uint32_t T : Deps.reachable()[2])
    EXPECT_EQ(T, 2u);
}

TEST(DependenceTest, GlobalTimeRelationMatchesDag) {
  // On small circuits the affine global time relation must cover exactly
  // the DAG's transitive dependences (it includes non-nearest pairs, which
  // the DAG realizes transitively).
  Circuit C(5);
  C.addCx(0, 1);
  C.addCx(1, 2);
  C.addCx(2, 3);
  C.addCx(3, 4);
  AffineCircuit AC = liftCircuit(C);
  AffineDependences Deps(AC);
  IntegerMap TimeRel = Deps.globalTimeRelation(AC);
  // Direct shared-qubit pairs must be present.
  EXPECT_TRUE(TimeRel.contains({0}, {1}));
  EXPECT_TRUE(TimeRel.contains({2}, {3}));
  // Gates 0 and 2 share no qubit: not a *direct* dependence.
  EXPECT_FALSE(TimeRel.contains({0}, {2}));
  EXPECT_FALSE(TimeRel.contains({1}, {0}));
}

//===----------------------------------------------------------------------===//
// Dependence weights (omega)
//===----------------------------------------------------------------------===//

TEST(WeightsTest, ExactEngineOnChain) {
  Circuit C(2);
  for (int I = 0; I < 5; ++I)
    C.addCx(0, 1);
  WeightOptions Opts;
  Opts.Engine = WeightEngine::Exact;
  WeightResult R = computeDependenceWeights(C, Opts);
  EXPECT_TRUE(R.IsExact);
  EXPECT_EQ(R.Weights, (std::vector<uint64_t>{4, 3, 2, 1, 0}));
}

TEST(WeightsTest, AffineEngineExactOnUniformChain) {
  // A sliding CX chain lifts to one statement with stride-1
  // self-dependence, where the affine closed form is exact.
  Circuit C(12);
  for (int I = 0; I < 11; ++I)
    C.addCx(I, I + 1);
  WeightOptions Exact;
  Exact.Engine = WeightEngine::Exact;
  WeightOptions Affine;
  Affine.Engine = WeightEngine::Affine;
  auto E = computeDependenceWeights(C, Exact);
  auto A = computeDependenceWeights(C, Affine);
  EXPECT_EQ(E.Weights, A.Weights);
  EXPECT_GT(A.CompressionRatio, 5.0);
}

TEST(WeightsTest, AffineIsUpperBoundOfExact) {
  // On arbitrary circuits the affine engine must never undercount.
  std::vector<Circuit> Cases;
  Cases.push_back(makeQft(8, true));
  Cases.push_back(makeAdder(8));
  Cases.push_back(makeQugan(6, 3));
  Cases.push_back(makeBv(7));
  QuekoSpec Spec;
  Spec.Depth = 12;
  Spec.Seed = 5;
  Cases.push_back(generateQueko(makeAspen16(), Spec).Circ);
  for (const Circuit &C : Cases) {
    WeightOptions Exact;
    Exact.Engine = WeightEngine::Exact;
    WeightOptions Affine;
    Affine.Engine = WeightEngine::Affine;
    auto E = computeDependenceWeights(C, Exact);
    auto A = computeDependenceWeights(C, Affine);
    ASSERT_EQ(E.Weights.size(), A.Weights.size());
    for (size_t I = 0; I < E.Weights.size(); ++I)
      EXPECT_GE(A.Weights[I], E.Weights[I])
          << C.name() << " gate " << I;
  }
}

TEST(WeightsTest, LastGateAlwaysZero) {
  Circuit C = makeGhz(10);
  for (WeightEngine Engine : {WeightEngine::Exact, WeightEngine::Affine}) {
    WeightOptions Opts;
    Opts.Engine = Engine;
    auto R = computeDependenceWeights(C, Opts);
    EXPECT_EQ(R.Weights.back(), 0u);
  }
}

TEST(WeightsTest, AutoSwitchesEngineBySize) {
  Circuit Small = makeGhz(5);
  WeightOptions Opts;
  Opts.Engine = WeightEngine::Auto;
  Opts.ExactGateLimit = 100;
  EXPECT_EQ(computeDependenceWeights(Small, Opts).UsedEngine,
            WeightEngine::Exact);
  Circuit Big = makeQugan(30, 10); // ~ 590 gates.
  EXPECT_EQ(computeDependenceWeights(Big, Opts).UsedEngine,
            WeightEngine::Affine);
}

TEST(WeightsTest, PaperExampleWeights) {
  // Fig. 1b circuit: omega counts transitive dependents.
  Circuit C(6);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(1, 2);
  C.addCx(3, 5);
  C.addCx(0, 2);
  C.addCx(1, 5);
  WeightOptions Opts;
  Opts.Engine = WeightEngine::Exact;
  auto R = computeDependenceWeights(C, Opts);
  EXPECT_EQ(R.Weights[0], 3u); // G2, G4, G5.
  EXPECT_EQ(R.Weights[1], 4u); // G2, G3, G4, G5.
  EXPECT_EQ(R.Weights[2], 2u); // G4, G5.
  EXPECT_EQ(R.Weights[3], 1u); // G5.
  EXPECT_EQ(R.Weights[4], 0u);
  EXPECT_EQ(R.Weights[5], 0u);
}
