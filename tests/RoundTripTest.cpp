//===- tests/RoundTripTest.cpp - Printer -> Parser closure tests ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-style closure tests for the QASM frontend against the routing
/// backends: whatever any of the five mappers emits must re-parse through
/// the Importer to the exact same gate sequence and re-verify against the
/// original circuit. This is the contract the qlosured protocol relies on
/// — responses carry routed programs as QASM text, so text must be a
/// lossless transport for routed circuits.
///
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/RoutingContext.h"
#include "route/Verify.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

/// Asserts Printer -> Parser closure for \p Result and re-verifies the
/// re-parsed circuit against the original routing inputs.
void expectClosure(const Circuit &Logical, const CouplingGraph &Hw,
                   const RoutingResult &Result, const std::string &Label) {
  std::string Text = qasm::printQasm(Result.Routed);
  qasm::ImportResult Reparsed = qasm::importQasm(Text, "roundtrip");
  ASSERT_TRUE(Reparsed.succeeded()) << Label << ": " << Reparsed.Error;

  const Circuit &Back = *Reparsed.Circ;
  ASSERT_EQ(Back.size(), Result.Routed.size()) << Label;
  ASSERT_EQ(Back.numQubits(), Result.Routed.numQubits()) << Label;
  for (size_t I = 0; I < Back.size(); ++I) {
    const Gate &Expected = Result.Routed.gate(I);
    const Gate &Actual = Back.gate(I);
    ASSERT_EQ(Actual.Kind, Expected.Kind) << Label << " gate " << I;
    ASSERT_EQ(Actual.Qubits, Expected.Qubits) << Label << " gate " << I;
    // %.17g printing makes double round-trips exact, so require equality.
    ASSERT_EQ(Actual.Params, Expected.Params) << Label << " gate " << I;
  }

  // The re-parsed circuit is interchangeable with the routed one: swap it
  // into the result and re-run the independent checker.
  RoutingResult Substituted = Result;
  Substituted.Routed = Back;
  VerifyResult Check = verifyRouting(Logical, Hw, Substituted);
  EXPECT_TRUE(Check.Ok) << Label << ": " << Check.Message;
}

} // namespace

TEST(RoundTripTest, AllMappersCloseOverQueko) {
  CouplingGraph Gen = makeSycamore54();
  CouplingGraph Backend = makeBackendByName("sherbrooke");
  QuekoSpec Spec;
  Spec.Depth = 30;
  Spec.Seed = 11;
  QuekoInstance Inst = generateQueko(Gen, Spec);

  RoutingContext Ctx = RoutingContext::build(Inst.Circ, Backend);
  ASSERT_TRUE(Ctx.valid());
  for (const std::string &Name : paperRouterNames()) {
    auto Mapper = makeRouterByName(Name);
    RoutingResult Result = Mapper->routeWithIdentity(Ctx);
    expectClosure(Inst.Circ, Backend, Result, "queko/" + Name);
  }
}

TEST(RoundTripTest, AllMappersCloseOverParameterizedCircuits) {
  // QFT stresses the parameterized-gate path (cp angles with long
  // fractional digits) where printing precision bugs would bite.
  Circuit Qft = makeQft(10);
  CouplingGraph Backend = makeBackendByName("aspen16");
  RoutingContext Ctx = RoutingContext::build(Qft, Backend);
  ASSERT_TRUE(Ctx.valid());
  for (const std::string &Name : paperRouterNames()) {
    auto Mapper = makeRouterByName(Name);
    RoutingResult Result = Mapper->routeWithIdentity(Ctx);
    expectClosure(Qft, Backend, Result, "qft/" + Name);
  }
}

TEST(RoundTripTest, ClosureHoldsAcrossSeeds) {
  // Light property sweep: several random QUEKO instances per mapper.
  CouplingGraph Gen = makeAspen16();
  CouplingGraph Backend = makeBackendByName("aspen16");
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    QuekoSpec Spec;
    Spec.Depth = 15;
    Spec.Seed = Seed;
    QuekoInstance Inst = generateQueko(Gen, Spec);
    RoutingContext Ctx = RoutingContext::build(Inst.Circ, Backend);
    ASSERT_TRUE(Ctx.valid());
    for (const std::string &Name : paperRouterNames()) {
      auto Mapper = makeRouterByName(Name);
      RoutingResult Result = Mapper->routeWithIdentity(Ctx);
      expectClosure(Inst.Circ, Backend, Result,
                    "seed" + std::to_string(Seed) + "/" + Name);
    }
  }
}
