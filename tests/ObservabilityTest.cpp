//===- tests/ObservabilityTest.cpp - Tracing, histograms, logging --------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability stack end to end: the span recorder (support/Trace.h),
// the log-scale latency histograms (service/Histogram.h), the structured
// logger (support/Log.h), the Prometheus walker on adversarial stats
// documents (service/Metrics.h), and the traced `route` request against a
// live server.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Histogram.h"
#include "service/Metrics.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

std::string testSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return formatString("/tmp/qlo-%d-%u.sock", static_cast<int>(getpid()),
                      Counter.fetch_add(1));
}

std::string sampleQasm() {
  return "OPENQASM 2.0;\n"
         "include \"qelib1.inc\";\n"
         "qreg q[5];\n"
         "h q[0];\n"
         "cx q[0],q[4];\n"
         "cx q[1],q[3];\n"
         "cx q[0],q[2];\n"
         "cx q[4],q[1];\n"
         "cx q[2],q[3];\n";
}

json::Value parseLine(const std::string &Line) {
  json::ParseResult Parsed = json::parse(Line);
  EXPECT_TRUE(Parsed.Ok) << Parsed.Error << " in: " << Line;
  return Parsed.V;
}

bool responseOk(const json::Value &Response) {
  const json::Value *Ok = Response.get("ok");
  return Ok && Ok->asBool();
}

} // namespace

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

TEST(TraceTest, RecordsNestedSpansWithDepths) {
  Trace T;
  T.reset("t1");
  int Outer = T.begin("outer");
  int Inner = T.begin("inner");
  T.end(Inner);
  T.end(Outer);
  int Sibling = T.begin("sibling");
  T.end(Sibling);

  ASSERT_EQ(T.spans().size(), 3u);
  EXPECT_STREQ(T.spans()[0].Name, "outer");
  EXPECT_EQ(T.spans()[0].Depth, 0);
  EXPECT_STREQ(T.spans()[1].Name, "inner");
  EXPECT_EQ(T.spans()[1].Depth, 1);
  EXPECT_EQ(T.spans()[2].Depth, 0);
  for (const Trace::Span &S : T.spans()) {
    EXPECT_GE(S.StartNs, 0);
    EXPECT_GE(S.DurNs, 0);
  }
  // Containment: the inner span lies within the outer one.
  EXPECT_GE(T.spans()[1].StartNs, T.spans()[0].StartNs);
  EXPECT_LE(T.spans()[1].StartNs + T.spans()[1].DurNs,
            T.spans()[0].StartNs + T.spans()[0].DurNs);
}

TEST(TraceTest, OutOfOrderEndClosesDeeperSpans) {
  Trace T;
  T.reset("t1");
  int Outer = T.begin("outer");
  (void)T.begin("leaked"); // Never ended explicitly.
  T.end(Outer);
  ASSERT_EQ(T.spans().size(), 2u);
  EXPECT_GE(T.spans()[1].DurNs, 0) << "leaked span must be closed";
  // The stack is empty again: the next span nests at depth 0.
  int Next = T.begin("next");
  T.end(Next);
  EXPECT_EQ(T.spans()[2].Depth, 0);
}

TEST(TraceTest, PoolCapCountsDropsInsteadOfGrowing) {
  Trace T;
  T.reset("t1");
  for (size_t I = 0; I < Trace::MaxSpans + 10; ++I)
    T.addNs("x", 0, 1);
  EXPECT_EQ(T.spans().size(), Trace::MaxSpans);
  EXPECT_EQ(T.dropped(), 10u);
  EXPECT_EQ(T.begin("over"), -1);
  T.end(-1); // No-op, must not crash.
  json::Value Doc = T.toJson();
  ASSERT_NE(Doc.get("dropped_spans"), nullptr);
  EXPECT_GT(Doc.get("dropped_spans")->asNumber(), 10);
}

TEST(TraceTest, ToJsonCarriesScheduleInMicroseconds) {
  Trace T;
  const auto Epoch = Trace::Clock::now();
  T.reset("abc123", Epoch);
  T.addNs("phase", 5000, 2000); // 5us in, 2us long.
  json::Value Doc = T.toJson(Epoch + std::chrono::milliseconds(1));
  EXPECT_EQ(Doc.get("trace_id")->asString(), "abc123");
  const json::Value *Spans = Doc.get("spans");
  ASSERT_NE(Spans, nullptr);
  ASSERT_EQ(Spans->items().size(), 1u);
  const json::Value &S = Spans->items()[0];
  EXPECT_EQ(S.get("name")->asString(), "phase");
  EXPECT_EQ(S.get("start_us")->asNumber(), 5);
  EXPECT_EQ(S.get("dur_us")->asNumber(), 2);
  EXPECT_EQ(S.get("depth")->asNumber(), 0);
}

TEST(TraceTest, ResetRearmsForANewRequest) {
  Trace T;
  T.reset("first");
  T.addNs("a", 0, 1);
  T.reset("second");
  EXPECT_TRUE(T.spans().empty());
  EXPECT_EQ(T.traceId(), "second");
  EXPECT_EQ(T.dropped(), 0u);
}

TEST(TraceTest, ScopedSpanIsNullSafe) {
  { ScopedSpan S(nullptr, "nothing"); } // Must not crash.
  Trace T;
  T.reset("t");
  {
    ScopedSpan S(&T, "scoped");
    S.done();
    S.done(); // Idempotent.
  }
  ASSERT_EQ(T.spans().size(), 1u);
  EXPECT_GE(T.spans()[0].DurNs, 0);
}

TEST(TraceTest, GeneratedIdsAreDistinctHexStrings) {
  std::set<std::string> Seen;
  for (int I = 0; I < 100; ++I) {
    std::string Id = generateTraceId();
    EXPECT_EQ(Id.size(), 16u);
    for (char C : Id)
      EXPECT_TRUE((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')) << Id;
    Seen.insert(Id);
  }
  EXPECT_EQ(Seen.size(), 100u);
}

//===----------------------------------------------------------------------===//
// LatencyHistogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketBoundariesArePowersOfTwoMicros) {
  // 1ns..1us land in the first bucket (ceil to us).
  EXPECT_EQ(LatencyHistogram::bucketFor(1), 0);
  EXPECT_EQ(LatencyHistogram::bucketFor(1000), 0);
  EXPECT_EQ(LatencyHistogram::bucketFor(1001), 1);   // 2us bucket
  EXPECT_EQ(LatencyHistogram::bucketFor(2000), 1);
  EXPECT_EQ(LatencyHistogram::bucketFor(2001), 2);   // 4us bucket
  EXPECT_EQ(LatencyHistogram::bucketFor(0), 0);
  // Past the last finite bound: overflow bucket.
  EXPECT_EQ(LatencyHistogram::bucketFor(int64_t(1) << 62),
            LatencyHistogram::NumBounds);
}

TEST(HistogramTest, RecordsAndSerializes) {
  LatencyHistogram H;
  H.recordNs(500);                    // 1us bucket
  H.recordNs(1500);                   // 2us bucket
  H.recordSeconds(0.001);             // 1ms = 1024us bucket
  EXPECT_EQ(H.count(), 3u);

  json::Value Doc = H.toJson();
  ASSERT_TRUE(isHistogramJson(Doc));
  EXPECT_EQ(Doc.get("count")->asNumber(), 3);
  EXPECT_NEAR(Doc.get("sum_seconds")->asNumber(), 0.001002, 1e-6);
  ASSERT_EQ(Doc.get("le_us")->items().size(),
            size_t(LatencyHistogram::NumBounds));
  ASSERT_EQ(Doc.get("bucket_counts")->items().size(),
            size_t(LatencyHistogram::NumBounds) + 1);
  EXPECT_EQ(Doc.get("bucket_counts")->items()[0].asNumber(), 1);
  EXPECT_EQ(Doc.get("bucket_counts")->items()[1].asNumber(), 1);
  EXPECT_EQ(Doc.get("le_us")->items()[10].asNumber(), 1024);
  EXPECT_EQ(Doc.get("bucket_counts")->items()[10].asNumber(), 1);
}

TEST(HistogramTest, MergeAddsBucketWise) {
  LatencyHistogram A, B;
  A.recordNs(500);
  A.recordNs(3000);
  B.recordNs(700);
  json::Value DocA = A.toJson();
  json::Value DocB = B.toJson();
  mergeHistogramJson(DocA, DocB);
  EXPECT_EQ(DocA.get("count")->asNumber(), 3);
  EXPECT_EQ(DocA.get("bucket_counts")->items()[0].asNumber(), 2);
  EXPECT_EQ(DocA.get("bucket_counts")->items()[2].asNumber(), 1);
  EXPECT_NEAR(DocA.get("sum_seconds")->asNumber(), 4200e-9, 1e-12);
}

TEST(HistogramTest, IsHistogramJsonRejectsLookalikes) {
  EXPECT_FALSE(isHistogramJson(json::Value()));
  EXPECT_FALSE(isHistogramJson(json::Value(3.0)));
  EXPECT_FALSE(isHistogramJson(json::Value::array()));
  json::Value NoTag = json::Value::object();
  NoTag.set("le_us", json::Value::array());
  NoTag.set("bucket_counts", json::Value::array());
  EXPECT_FALSE(isHistogramJson(NoTag));
  json::Value WrongTag = NoTag;
  WrongTag.set("type", "gauge");
  EXPECT_FALSE(isHistogramJson(WrongTag));
  json::Value MissingArrays = json::Value::object();
  MissingArrays.set("type", "histogram");
  EXPECT_FALSE(isHistogramJson(MissingArrays));
}

//===----------------------------------------------------------------------===//
// Structured logging
//===----------------------------------------------------------------------===//

TEST(LogTest, ParsesLevelsAndRejectsJunk) {
  log::Level L = log::Level::Off;
  EXPECT_TRUE(log::parseLevel("debug", L));
  EXPECT_EQ(L, log::Level::Debug);
  EXPECT_TRUE(log::parseLevel("warn", L));
  EXPECT_EQ(L, log::Level::Warn);
  EXPECT_TRUE(log::parseLevel("off", L));
  EXPECT_EQ(L, log::Level::Off);
  log::Level Unchanged = log::Level::Info;
  EXPECT_FALSE(log::parseLevel("verbose", Unchanged));
  EXPECT_EQ(Unchanged, log::Level::Info);
  EXPECT_STREQ(log::levelName(log::Level::Error), "error");
}

TEST(LogTest, ThresholdGatesAndFileSinkEmitsParseableJson) {
  std::string Path = formatString("/tmp/qlo-log-%d.jsonl",
                                  static_cast<int>(getpid()));
  std::remove(Path.c_str());
  ASSERT_TRUE(log::configure(log::Level::Warn, Path));
  EXPECT_FALSE(log::enabled(log::Level::Info));
  EXPECT_TRUE(log::enabled(log::Level::Warn));
  EXPECT_TRUE(log::enabled(log::Level::Error));

  log::Event(log::Level::Info, "filtered").num("n", 1);
  {
    json::Value Sub = json::Value::object();
    Sub.set("inner", 7);
    log::Event(log::Level::Error, "kept\nnewline\"quote")
        .str("text", "a\tb")
        .num("value", 2.5)
        .boolean("flag", true)
        .json("sub", std::move(Sub));
  }
  log::flush();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::vector<std::string> Lines;
  for (std::string Line; std::getline(In, Line);)
    Lines.push_back(Line);
  ASSERT_EQ(Lines.size(), 1u) << "info line must be filtered";
  json::Value Doc = parseLine(Lines[0]);
  EXPECT_EQ(Doc.get("level")->asString(), "error");
  EXPECT_EQ(Doc.get("msg")->asString(), "kept\nnewline\"quote");
  EXPECT_EQ(Doc.get("text")->asString(), "a\tb");
  EXPECT_EQ(Doc.get("value")->asNumber(), 2.5);
  EXPECT_TRUE(Doc.get("flag")->asBool());
  EXPECT_EQ(Doc.get("sub")->get("inner")->asNumber(), 7);
  EXPECT_GT(Doc.get("ts")->asNumber(), 1.5e9);

  // Restore the default so later tests in this process log nothing.
  log::configure(log::Level::Off, "");
  std::remove(Path.c_str());
}

TEST(LogTest, ConfigureFailsOnUnopenablePathAndKeepsOldSink) {
  ASSERT_FALSE(log::configure(log::Level::Info,
                              "/nonexistent-dir-qlo/x/y/z.log"));
  log::configure(log::Level::Off, "");
}

//===----------------------------------------------------------------------===//
// Prometheus walker on adversarial stats documents (and label escaping)
//===----------------------------------------------------------------------===//

TEST(MetricsWalkerTest, SkipsNonNumericLeavesAndEmptyObjects) {
  json::ParseResult Doc = json::parse(
      "{\"name\":\"qlosured\",\"empty\":{},\"list\":[1,2,3],"
      "\"nil\":null,\"nested\":{\"also_empty\":{},\"n\":4},"
      "\"flag\":true}");
  ASSERT_TRUE(Doc.Ok);
  std::string Text = prometheusText(Doc.V, "q");
  EXPECT_EQ(Text.find("q_name"), std::string::npos);
  EXPECT_EQ(Text.find("q_empty"), std::string::npos);
  EXPECT_EQ(Text.find("q_list"), std::string::npos);
  EXPECT_EQ(Text.find("q_nil"), std::string::npos);
  EXPECT_NE(Text.find("q_nested_n 4\n"), std::string::npos) << Text;
  EXPECT_NE(Text.find("q_flag 1\n"), std::string::npos) << Text;
}

TEST(MetricsWalkerTest, SanitizesHostileMemberNames) {
  json::Value Doc = json::Value::object();
  json::Value Inner = json::Value::object();
  Inner.set("weird name-2.0", 7);
  Doc.set("ca$he", std::move(Inner));
  std::string Text = prometheusText(Doc, "q");
  EXPECT_NE(Text.find("q_ca_he_weird_name_2_0 7\n"), std::string::npos)
      << Text;
}

TEST(MetricsWalkerTest, MergesDisjointCounterSets) {
  json::ParseResult A = json::parse(
      "{\"server\":{\"requests\":3,\"errors\":1},\"only_a\":2}");
  json::ParseResult B = json::parse(
      "{\"server\":{\"requests\":5,\"cancels\":4},\"only_b\":true,"
      "\"label\":\"x\"}");
  ASSERT_TRUE(A.Ok && B.Ok);
  json::Value Merged = mergeStatsDocs({A.V, B.V});
  EXPECT_EQ(Merged.get("server")->get("requests")->asNumber(), 8);
  EXPECT_EQ(Merged.get("server")->get("errors")->asNumber(), 1);
  EXPECT_EQ(Merged.get("server")->get("cancels")->asNumber(), 4);
  EXPECT_EQ(Merged.get("only_a")->asNumber(), 2);
  EXPECT_EQ(Merged.get("only_b")->asNumber(), 1) << "bool counts as 0/1";
  EXPECT_EQ(Merged.get("label")->asString(), "x");
}

TEST(MetricsWalkerTest, RendersHistogramsCumulatively) {
  LatencyHistogram H;
  H.recordNs(500);     // bucket 0 (le 1us)
  H.recordNs(1500);    // bucket 1 (le 2us)
  H.recordNs(1800);    // bucket 1
  json::Value Doc = json::Value::object();
  json::Value Lat = json::Value::object();
  Lat.set("route", H.toJson());
  Doc.set("latency", std::move(Lat));
  std::string Text = prometheusText(Doc, "q");
  EXPECT_NE(Text.find("# TYPE q_latency_route histogram"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("q_latency_route_bucket{le=\"1e-06\"} 1\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("q_latency_route_bucket{le=\"2e-06\"} 3\n"),
            std::string::npos)
      << "buckets must accumulate: " << Text;
  EXPECT_NE(Text.find("q_latency_route_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("q_latency_route_count 3\n"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("q_latency_route_sum"), std::string::npos);
  // With labels, the le label is appended after them.
  std::string Labeled;
  appendPrometheusText(Labeled, Doc, "q", "shard=\"0\"");
  EXPECT_NE(Labeled.find("q_latency_route_bucket{shard=\"0\",le=\"1e-06\"}"),
            std::string::npos)
      << Labeled;
  EXPECT_NE(Labeled.find("q_latency_route_count{shard=\"0\"}"),
            std::string::npos)
      << Labeled;
}

TEST(MetricsWalkerTest, HistogramLeavesMergeInsideStatsDocs) {
  LatencyHistogram A, B;
  A.recordNs(500);
  B.recordNs(500);
  B.recordNs(5000);
  json::Value DocA = json::Value::object();
  DocA.set("latency", A.toJson());
  json::Value DocB = json::Value::object();
  DocB.set("latency", B.toJson());
  json::Value Merged = mergeStatsDocs({DocA, DocB});
  const json::Value *H = Merged.get("latency");
  ASSERT_NE(H, nullptr);
  ASSERT_TRUE(isHistogramJson(*H));
  EXPECT_EQ(H->get("count")->asNumber(), 3);
  EXPECT_EQ(H->get("bucket_counts")->items()[0].asNumber(), 2);
  // Bounds stay identification, not doubled by the merge.
  EXPECT_EQ(H->get("le_us")->items()[0].asNumber(), 1);
}

TEST(MetricsWalkerTest, LabelValuesEscapePerExpositionFormat) {
  EXPECT_EQ(prometheusLabelValue("plain"), "plain");
  EXPECT_EQ(prometheusLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(prometheusLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheusLabelValue("a\nb"), "a\\nb");
  // NOT JSON escaping: tabs and other controls pass through verbatim.
  EXPECT_EQ(prometheusLabelValue("a\tb"), "a\tb");
}

//===----------------------------------------------------------------------===//
// Traced requests against a live server
//===----------------------------------------------------------------------===//

namespace {

struct TracedServerFixture {
  ServerOptions Opts;
  std::unique_ptr<Server> Daemon;
  std::thread Waiter;

  explicit TracedServerFixture(double SlowMs = 0) {
    Opts.Listen = testSocketPath();
    Opts.Workers = 2;
    Opts.DefaultTimeoutSeconds = 30;
    Opts.SlowRequestMs = SlowMs;
    Daemon = std::make_unique<Server>(Opts);
    Status Started = Daemon->start();
    EXPECT_TRUE(Started.ok()) << Started.message();
    Waiter = std::thread([this] { Daemon->wait(); });
  }

  ~TracedServerFixture() {
    Daemon->requestStop();
    if (Waiter.joinable())
      Waiter.join();
  }

  Client connect() {
    Client Conn;
    Status S = Conn.connect(Daemon->boundAddress(), 5.0);
    EXPECT_TRUE(S.ok()) << S.message();
    return Conn;
  }
};

json::Value tracedRouteRequest(const std::string &Id) {
  json::Value Req = json::Value::object();
  Req.set("op", "route");
  Req.set("qasm", sampleQasm());
  Req.set("mapper", "qlosure");
  Req.set("backend", "aspen16");
  Req.set("id", Id);
  Req.set("trace", true);
  return Req;
}

} // namespace

TEST(TracedServiceTest, TracedRouteReturnsAttributedSpans) {
  TracedServerFixture Fixture;
  Client Conn = Fixture.connect();

  const auto Before = std::chrono::steady_clock::now();
  std::string Response;
  ASSERT_TRUE(Conn.request(tracedRouteRequest("r1").dump(), Response).ok());
  const double WallUs = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - Before)
                            .count();
  json::Value Doc = parseLine(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;

  const json::Value *TraceObj = Doc.get("trace");
  ASSERT_NE(TraceObj, nullptr) << Response;
  EXPECT_FALSE(TraceObj->get("trace_id")->asString().empty());
  const json::Value *Spans = TraceObj->get("spans");
  ASSERT_NE(Spans, nullptr);

  std::set<std::string> Names;
  double DepthZeroSumUs = 0;
  for (const json::Value &S : Spans->items()) {
    Names.insert(S.get("name")->asString());
    EXPECT_GE(S.get("start_us")->asNumber(), 0) << S.dump();
    EXPECT_GE(S.get("dur_us")->asNumber(), 0) << S.dump();
    if (S.get("depth")->asNumber() == 0)
      DepthZeroSumUs += S.get("dur_us")->asNumber();
  }
  // The mandated phase attribution: queue wait, context build, and the
  // routing loop are individually visible.
  EXPECT_TRUE(Names.count("queue_wait")) << Response;
  EXPECT_TRUE(Names.count("context_build")) << Response;
  EXPECT_TRUE(Names.count("initial_mapping")) << Response;
  EXPECT_TRUE(Names.count("routing_loop")) << Response;
  EXPECT_TRUE(Names.count("verify")) << Response;
  EXPECT_TRUE(Names.count("import_qasm")) << Response;
  // Depth-0 spans are sequential phases of one request: their total
  // cannot exceed the client-observed wall clock.
  EXPECT_LE(DepthZeroSumUs, WallUs) << Response;
  EXPECT_GT(DepthZeroSumUs, 0) << Response;

  // A client-supplied trace_id is echoed.
  json::Value Custom = tracedRouteRequest("r2");
  Custom.set("trace_id", "my-trace-42");
  ASSERT_TRUE(Conn.request(Custom.dump(), Response).ok());
  json::Value Doc2 = parseLine(Response);
  ASSERT_TRUE(responseOk(Doc2)) << Response;
  EXPECT_EQ(Doc2.get("trace")->get("trace_id")->asString(), "my-trace-42");

  // The repeat is a result-cache hit: still traced, with the marker span.
  ASSERT_TRUE(Conn.request(tracedRouteRequest("r3").dump(), Response).ok());
  json::Value Doc3 = parseLine(Response);
  ASSERT_TRUE(responseOk(Doc3)) << Response;
  ASSERT_TRUE(Doc3.get("cache_hit")->asBool()) << Response;
  bool SawMarker = false;
  for (const json::Value &S : Doc3.get("trace")->get("spans")->items())
    SawMarker |= S.get("name")->asString() == "result_cache_hit";
  EXPECT_TRUE(SawMarker) << Response;
}

TEST(TracedServiceTest, UntracedRouteCarriesNoTraceSection) {
  TracedServerFixture Fixture;
  Client Conn = Fixture.connect();
  json::Value Req = json::Value::object();
  Req.set("op", "route");
  Req.set("qasm", sampleQasm());
  Req.set("backend", "aspen16");
  std::string Response;
  ASSERT_TRUE(Conn.request(Req.dump(), Response).ok());
  json::Value Doc = parseLine(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;
  EXPECT_EQ(Doc.get("trace"), nullptr);
}

TEST(TracedServiceTest, StatsExposeLatencyHistograms) {
  TracedServerFixture Fixture;
  Client Conn = Fixture.connect();
  json::Value Req = json::Value::object();
  Req.set("op", "route");
  Req.set("qasm", sampleQasm());
  Req.set("backend", "aspen16");
  std::string Response;
  ASSERT_TRUE(Conn.request(Req.dump(), Response).ok());
  ASSERT_TRUE(responseOk(parseLine(Response))) << Response;

  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", Response).ok());
  json::Value Stats = parseLine(Response);
  ASSERT_TRUE(responseOk(Stats)) << Response;
  const json::Value *Lat = Stats.get("latency");
  ASSERT_NE(Lat, nullptr) << Response;
  for (const char *Phase : {"route", "queue_wait", "context_build",
                            "initial_mapping", "routing_loop", "verify"}) {
    const json::Value *H = Lat->get(Phase);
    ASSERT_NE(H, nullptr) << Phase;
    ASSERT_TRUE(isHistogramJson(*H)) << Phase;
    EXPECT_GE(H->get("count")->asNumber(), 1) << Phase;
  }
  // Histograms record with tracing off too (always-on observability).
  const json::Value *RouteH = Lat->get("route");
  EXPECT_GT(RouteH->get("sum_seconds")->asNumber(), 0);

  // And they render as histogram series in the metrics op.
  ASSERT_TRUE(Conn.request("{\"op\":\"metrics\"}", Response).ok());
  json::Value MetricsDoc = parseLine(Response);
  ASSERT_TRUE(responseOk(MetricsDoc)) << Response;
  const std::string &Text = MetricsDoc.get("body")->asString();
  EXPECT_NE(Text.find("qlosure_latency_route_bucket{le="),
            std::string::npos)
      << Text.substr(0, 2000);
  EXPECT_NE(Text.find("qlosure_latency_route_count"), std::string::npos);
}

TEST(TracedServiceTest, BatchItemsCarryPerItemTraces) {
  TracedServerFixture Fixture;
  Client Conn = Fixture.connect();
  json::Value Req = json::Value::object();
  Req.set("op", "batch");
  Req.set("id", "b1");
  Req.set("backend", "aspen16");
  Req.set("trace", true);
  json::Value Items = json::Value::array();
  for (int I = 0; I < 2; ++I) {
    json::Value Item = json::Value::object();
    Item.set("name", formatString("c%d", I));
    // Distinct circuits per item: identical items would coalesce into
    // one flight, and a coalesced follower frame carries no trace.
    Item.set("qasm", sampleQasm() + formatString("h q[%d];\n", I));
    Items.push(std::move(Item));
  }
  Req.set("items", std::move(Items));

  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  std::vector<std::string> ItemFrames;
  std::string Summary;
  ASSERT_TRUE(Conn.recvResponseFor(
                      "b1", Summary,
                      [&](const std::string &L) { ItemFrames.push_back(L); },
                      "batch")
                  .ok());
  ASSERT_TRUE(responseOk(parseLine(Summary))) << Summary;
  ASSERT_EQ(ItemFrames.size(), 2u);
  std::set<std::string> TraceIds;
  for (const std::string &Frame : ItemFrames) {
    json::Value Item = parseLine(Frame);
    const json::Value *TraceObj = Item.get("trace");
    ASSERT_NE(TraceObj, nullptr) << Frame;
    TraceIds.insert(TraceObj->get("trace_id")->asString());
    bool SawQueueWait = false;
    for (const json::Value &S : TraceObj->get("spans")->items())
      SawQueueWait |= S.get("name")->asString() == "queue_wait";
    EXPECT_TRUE(SawQueueWait) << Frame;
  }
  EXPECT_EQ(TraceIds.size(), 2u) << "per-item trace ids must be distinct";
  EXPECT_TRUE(TraceIds.count("b1-0")) << Summary;
  EXPECT_TRUE(TraceIds.count("b1-1")) << Summary;
}

TEST(TracedServiceTest, SlowRequestThresholdLogsStructuredLine) {
  std::string Path = formatString("/tmp/qlo-slow-%d.jsonl",
                                  static_cast<int>(getpid()));
  std::remove(Path.c_str());
  ASSERT_TRUE(log::configure(log::Level::Warn, Path));

  {
    // Threshold 0.0001ms: every request counts as slow.
    TracedServerFixture Fixture(/*SlowMs=*/0.0001);
    Client Conn = Fixture.connect();
    std::string Response;
    ASSERT_TRUE(
        Conn.request(tracedRouteRequest("slow1").dump(), Response).ok());
    ASSERT_TRUE(responseOk(parseLine(Response))) << Response;
  }
  log::flush();

  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  bool SawSlowLine = false;
  for (std::string Line; std::getline(In, Line);) {
    json::Value Doc = parseLine(Line);
    if (Doc.get("msg") && Doc.get("msg")->asString() == "slow_request") {
      SawSlowLine = true;
      EXPECT_EQ(Doc.get("level")->asString(), "warn");
      EXPECT_EQ(Doc.get("op")->asString(), "route");
      EXPECT_GT(Doc.get("total_ms")->asNumber(), 0);
      ASSERT_NE(Doc.get("trace"), nullptr) << Line;
      EXPECT_GT(Doc.get("trace")->get("spans")->items().size(), 0u);
    }
  }
  EXPECT_TRUE(SawSlowLine);

  log::configure(log::Level::Off, "");
  std::remove(Path.c_str());
}
