//===- tests/ServiceTest.cpp - qlosured service subsystem tests -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the persistent-mapping-service stack, bottom-up: the JSON
/// library, the protocol codec, the sharded caches, the scheduler, and a
/// full in-process Server driven over a real Unix socket by the blocking
/// Client — including the CI-critical properties: repeated requests hit
/// the cache, responses are byte-identical to direct library calls, and
/// the daemon survives every flavor of malformed input with a structured
/// error instead of a crash or a wedged connection.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/ContextCache.h"
#include "service/Protocol.h"
#include "service/Scheduler.h"
#include "service/Server.h"

#include "baselines/RouterRegistry.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/Verify.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

/// A short, unique Unix socket path (sun_path is ~108 bytes).
std::string testSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return formatString("/tmp/qls-%d-%u.sock", static_cast<int>(getpid()),
                      Counter.fetch_add(1));
}

std::string sampleQasm() {
  return "OPENQASM 2.0;\n"
         "include \"qelib1.inc\";\n"
         "qreg q[5];\n"
         "h q[0];\n"
         "cx q[0],q[4];\n"
         "cx q[1],q[3];\n"
         "cx q[0],q[2];\n"
         "cx q[4],q[1];\n"
         "cx q[2],q[3];\n";
}

json::Value routeRequest(const std::string &Qasm,
                         const std::string &Mapper = "qlosure",
                         const std::string &Backend = "aspen16") {
  json::Value Req = json::Value::object();
  Req.set("op", "route");
  Req.set("qasm", Qasm);
  Req.set("mapper", Mapper);
  Req.set("backend", Backend);
  return Req;
}

json::Value cancelRequest(const std::string &Id) {
  json::Value Req = json::Value::object();
  Req.set("op", "cancel");
  Req.set("id", Id);
  return Req;
}

/// A QUEKO circuit whose `qmap` routing onto sherbrooke2x takes several
/// hundred milliseconds per 100 cycles of depth — the "reliably still in
/// flight when the cancel arrives" workload of the cancellation tests.
std::string deepQuekoQasm(unsigned Depth, uint64_t Seed = 3) {
  CouplingGraph Gen = makeKings9x9();
  QuekoSpec Spec;
  Spec.Depth = Depth;
  Spec.Seed = Seed;
  return qasm::printQasm(generateQueko(Gen, Spec).Circ);
}

json::Value slowRouteRequest(const std::string &Id, unsigned Depth = 400,
                             uint64_t Seed = 3) {
  json::Value Req = routeRequest(deepQuekoQasm(Depth, Seed), "qmap",
                                 "sherbrooke2x");
  Req.set("id", Id);
  Req.set("include_qasm", false);
  return Req;
}

/// Parses a response line and returns the document (fails the test on
/// malformed JSON).
json::Value parseResponse(const std::string &Line) {
  json::ParseResult Parsed = json::parse(Line);
  EXPECT_TRUE(Parsed.Ok) << Parsed.Error << " in: " << Line;
  return Parsed.V;
}

bool responseOk(const json::Value &Response) {
  const json::Value *Ok = Response.get("ok");
  return Ok && Ok->asBool();
}

std::string errorCode(const json::Value &Response) {
  const json::Value *Error = Response.get("error");
  if (!Error || !Error->isObject())
    return "";
  const json::Value *Code = Error->get("code");
  return Code ? Code->asString() : "";
}

} // namespace

//===----------------------------------------------------------------------===//
// JSON library
//===----------------------------------------------------------------------===//

TEST(JsonTest, RoundTripsValues) {
  json::Value Doc = json::Value::object();
  Doc.set("text", "line1\nline2\t\"quoted\"\\");
  Doc.set("int", 42);
  Doc.set("neg", -7);
  Doc.set("float", 2.5);
  Doc.set("flag", true);
  Doc.set("nil", json::Value());
  json::Value Arr = json::Value::array();
  Arr.push(1);
  Arr.push("two");
  Arr.push(false);
  Doc.set("arr", std::move(Arr));

  std::string Wire = Doc.dump();
  EXPECT_EQ(Wire.find('\n'), std::string::npos)
      << "dump() must stay on one line";
  json::ParseResult Back = json::parse(Wire);
  ASSERT_TRUE(Back.Ok) << Back.Error;
  EXPECT_EQ(Back.V.get("text")->asString(), "line1\nline2\t\"quoted\"\\");
  EXPECT_EQ(Back.V.get("int")->asNumber(), 42);
  EXPECT_EQ(Back.V.get("neg")->asNumber(), -7);
  EXPECT_EQ(Back.V.get("float")->asNumber(), 2.5);
  EXPECT_TRUE(Back.V.get("flag")->asBool());
  EXPECT_TRUE(Back.V.get("nil")->isNull());
  ASSERT_EQ(Back.V.get("arr")->items().size(), 3u);
  EXPECT_EQ(Back.V.get("arr")->items()[1].asString(), "two");
}

TEST(JsonTest, IntegersSerializeWithoutDecimalPoint) {
  json::Value Doc = json::Value::object();
  Doc.set("n", 1234567);
  EXPECT_NE(Doc.dump().find("\"n\":1234567"), std::string::npos);
}

TEST(JsonTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(json::parse("").Ok);
  EXPECT_FALSE(json::parse("{").Ok);
  EXPECT_FALSE(json::parse("{\"a\":}").Ok);
  EXPECT_FALSE(json::parse("[1,]").Ok);
  EXPECT_FALSE(json::parse("\"unterminated").Ok);
  EXPECT_FALSE(json::parse("{} trailing").Ok);
  EXPECT_FALSE(json::parse("nul").Ok);
  EXPECT_FALSE(json::parse("1e").Ok);
  EXPECT_FALSE(json::parse("\"bad \\x escape\"").Ok);
}

TEST(JsonTest, ParserSurvivesPathologicalNesting) {
  std::string Deep(100000, '[');
  json::ParseResult Result = json::parse(Deep);
  EXPECT_FALSE(Result.Ok);
  EXPECT_NE(Result.Error.find("nesting too deep"), std::string::npos);
}

TEST(JsonTest, UnicodeEscapesDecodeToUtf8) {
  json::ParseResult Result = json::parse("\"\\u00e9\\u20ac\"");
  ASSERT_TRUE(Result.Ok) << Result.Error;
  EXPECT_EQ(Result.V.asString(), "\xC3\xA9\xE2\x82\xAC");
}

//===----------------------------------------------------------------------===//
// Protocol codec
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ParsesRouteRequestWithDefaults) {
  RequestParse Parsed =
      parseRequest("{\"op\":\"route\",\"qasm\":\"OPENQASM 2.0;\"}");
  ASSERT_TRUE(Parsed.Ok) << Parsed.ErrorMessage;
  EXPECT_EQ(Parsed.Req.TheOp, Op::Route);
  EXPECT_EQ(Parsed.Req.Route.Mapper, "qlosure");
  EXPECT_EQ(Parsed.Req.Route.Backend, "sherbrooke");
  EXPECT_FALSE(Parsed.Req.Route.Bidirectional);
  EXPECT_TRUE(Parsed.Req.Route.IncludeQasm);
}

TEST(ProtocolTest, RejectsMissingAndMistypedFields) {
  EXPECT_EQ(parseRequest("{\"op\":\"route\"}").ErrorCode, errc::BadRequest);
  EXPECT_EQ(parseRequest("{\"op\":\"route\",\"qasm\":5}").ErrorCode,
            errc::BadRequest);
  EXPECT_EQ(
      parseRequest("{\"op\":\"route\",\"qasm\":\"x\",\"mapper\":false}")
          .ErrorCode,
      errc::BadRequest);
  EXPECT_EQ(parseRequest("{\"op\":\"route\",\"qasm\":\"x\","
                         "\"calibration\":-3}")
                .ErrorCode,
            errc::BadRequest);
  EXPECT_EQ(parseRequest("not json at all").ErrorCode, errc::BadJson);
  EXPECT_EQ(parseRequest("[]").ErrorCode, errc::BadRequest);
  EXPECT_EQ(parseRequest("{\"op\":\"frobnicate\"}").ErrorCode,
            errc::BadRequest);
  // Out-of-range calibration values must be rejected, not cast (the
  // double -> uint64_t conversion would be undefined past 2^64).
  EXPECT_EQ(parseRequest("{\"op\":\"route\",\"qasm\":\"x\","
                         "\"calibration\":1e300}")
                .ErrorCode,
            errc::BadRequest);
  EXPECT_EQ(parseRequest("{\"op\":\"route\",\"qasm\":\"x\","
                         "\"calibration\":1.5}")
                .ErrorCode,
            errc::BadRequest);
}

TEST(ProtocolTest, ResponsesCarryIdAndStableShape) {
  std::string Ping = formatPingResponse("abc");
  json::Value Doc = parseResponse(Ping);
  EXPECT_TRUE(responseOk(Doc));
  EXPECT_EQ(Doc.get("id")->asString(), "abc");

  std::string Error =
      formatErrorResponse("route", "r1", errc::BadQasm, "boom");
  json::Value ErrDoc = parseResponse(Error);
  EXPECT_FALSE(responseOk(ErrDoc));
  EXPECT_EQ(errorCode(ErrDoc), "bad_qasm");
  EXPECT_EQ(ErrDoc.get("error")->get("message")->asString(), "boom");
}

TEST(ProtocolTest, ParsesCancelAndProgress) {
  RequestParse Cancel = parseRequest("{\"op\":\"cancel\",\"id\":\"r7\"}");
  ASSERT_TRUE(Cancel.Ok) << Cancel.ErrorMessage;
  EXPECT_EQ(Cancel.Req.TheOp, Op::Cancel);
  EXPECT_EQ(Cancel.Req.Id, "r7");
  // cancel must name its target.
  EXPECT_EQ(parseRequest("{\"op\":\"cancel\"}").ErrorCode, errc::BadRequest);
  EXPECT_EQ(parseRequest("{\"op\":\"cancel\",\"id\":\"\"}").ErrorCode,
            errc::BadRequest);

  RequestParse Route = parseRequest(
      "{\"op\":\"route\",\"qasm\":\"x\",\"progress\":true,\"id\":\"p\"}");
  ASSERT_TRUE(Route.Ok) << Route.ErrorMessage;
  EXPECT_TRUE(Route.Req.Route.Progress);
}

TEST(ProtocolTest, RejectionsPreserveCorrelation) {
  // A shape error must not cost the client its (op, id) correlation —
  // a pipelined demultiplexer would otherwise wait forever.
  RequestParse Bad = parseRequest(
      "{\"op\":\"route\",\"id\":\"r1\",\"timeout_ms\":\"fast\"}");
  EXPECT_FALSE(Bad.Ok);
  EXPECT_EQ(Bad.ErrorCode, errc::BadRequest);
  EXPECT_EQ(Bad.OpName, "route");
  EXPECT_EQ(Bad.Req.Id, "r1");

  RequestParse Missing = parseRequest("{\"op\":\"route\",\"id\":\"r2\"}");
  EXPECT_FALSE(Missing.Ok);
  EXPECT_EQ(Missing.Req.Id, "r2");

  RequestParse UnknownOp = parseRequest("{\"op\":\"warp\",\"id\":\"r3\"}");
  EXPECT_FALSE(UnknownOp.Ok);
  EXPECT_EQ(UnknownOp.OpName, "warp");
  EXPECT_EQ(UnknownOp.Req.Id, "r3");

  // Unparseable JSON genuinely has no correlation to preserve.
  RequestParse NoJson = parseRequest("not json");
  EXPECT_FALSE(NoJson.Ok);
  EXPECT_TRUE(NoJson.OpName.empty());
  EXPECT_TRUE(NoJson.Req.Id.empty());
}

TEST(ProtocolTest, ParsesBatchRequest) {
  RequestParse Parsed = parseRequest(
      "{\"op\":\"batch\",\"id\":\"b1\",\"mapper\":\"sabre\","
      "\"items\":[{\"name\":\"a\",\"qasm\":\"x\"},{\"qasm\":\"y\"}]}");
  ASSERT_TRUE(Parsed.Ok) << Parsed.ErrorMessage;
  EXPECT_EQ(Parsed.Req.TheOp, Op::Batch);
  EXPECT_EQ(Parsed.Req.Id, "b1");
  EXPECT_EQ(Parsed.Req.Route.Mapper, "sabre");
  EXPECT_EQ(Parsed.Req.Route.Backend, "sherbrooke");
  ASSERT_EQ(Parsed.Req.Items.size(), 2u);
  EXPECT_EQ(Parsed.Req.Items[0].Name, "a");
  EXPECT_EQ(Parsed.Req.Items[0].Qasm, "x");
  EXPECT_TRUE(Parsed.Req.Items[1].Name.empty());
  EXPECT_EQ(Parsed.Req.Items[1].Qasm, "y");

  // A batch's per-item frames demultiplex by the batch id, so the id is
  // mandatory; items must be a non-empty array of {qasm[, name]} objects.
  const char *Rejected[] = {
      "{\"op\":\"batch\",\"items\":[{\"qasm\":\"x\"}]}",
      "{\"op\":\"batch\",\"id\":\"\",\"items\":[{\"qasm\":\"x\"}]}",
      "{\"op\":\"batch\",\"id\":\"b\"}",
      "{\"op\":\"batch\",\"id\":\"b\",\"items\":[]}",
      "{\"op\":\"batch\",\"id\":\"b\",\"items\":\"x\"}",
      "{\"op\":\"batch\",\"id\":\"b\",\"items\":[\"x\"]}",
      "{\"op\":\"batch\",\"id\":\"b\",\"items\":[{\"name\":\"a\"}]}",
      "{\"op\":\"batch\",\"id\":\"b\",\"items\":[{\"qasm\":7}]}",
      "{\"op\":\"batch\",\"id\":\"b\","
      "\"items\":[{\"qasm\":\"x\",\"name\":3}]}",
  };
  for (const char *Line : Rejected)
    EXPECT_EQ(parseRequest(Line).ErrorCode, errc::BadRequest) << Line;

  // The item cap rejects absurd batches up front.
  std::string Huge = "{\"op\":\"batch\",\"id\":\"b\",\"items\":[";
  for (size_t I = 0; I < 4097; ++I) {
    if (I)
      Huge += ",";
    Huge += "{\"qasm\":\"x\"}";
  }
  Huge += "]}";
  EXPECT_EQ(parseRequest(Huge).ErrorCode, errc::BadRequest);
}

TEST(ProtocolTest, BatchFrameShapes) {
  // Item frames are events: they carry "event" and no "ok", and signal
  // item success/failure by the presence of "stats" vs "error".
  RouteStats Stats;
  Stats.LogicalGates = 10;
  Stats.RoutedGates = 14;
  Stats.Swaps = 4;
  json::Value Good = parseResponse(formatBatchItemResult(
      "b1", 2, "ghz", "qlosure", "aspen16", Stats,
      /*ContextCacheHit=*/true, /*ResultCacheHit=*/false, "QASM...",
      /*IncludeQasm=*/true));
  EXPECT_EQ(Good.get("ok"), nullptr);
  EXPECT_EQ(Good.get("event")->asString(), "batch_item");
  EXPECT_EQ(Good.get("op")->asString(), "batch");
  EXPECT_EQ(Good.get("id")->asString(), "b1");
  EXPECT_EQ(Good.get("index")->asNumber(), 2);
  EXPECT_EQ(Good.get("name")->asString(), "ghz");
  ASSERT_NE(Good.get("stats"), nullptr);
  EXPECT_EQ(Good.get("error"), nullptr);
  EXPECT_TRUE(Good.get("cache_hit")->asBool());
  EXPECT_EQ(Good.get("qasm")->asString(), "QASM...");

  json::Value Bad = parseResponse(
      formatBatchItemError("b1", 0, "", errc::BadQasm, "boom"));
  EXPECT_EQ(Bad.get("ok"), nullptr);
  EXPECT_EQ(Bad.get("event")->asString(), "batch_item");
  EXPECT_EQ(Bad.get("index")->asNumber(), 0);
  EXPECT_EQ(Bad.get("name"), nullptr) << "empty names are omitted";
  EXPECT_EQ(Bad.get("stats"), nullptr);
  EXPECT_EQ(errorCode(Bad), "bad_qasm");

  json::Value Summary = parseResponse(formatBatchSummaryResponse(
      "b1", "qlosure", "aspen16", {"ghz", "", "qft"},
      {"ok", errc::Cancelled, errc::BadQasm}));
  EXPECT_TRUE(responseOk(Summary));
  EXPECT_EQ(Summary.get("op")->asString(), "batch");
  EXPECT_EQ(Summary.get("total")->asNumber(), 3);
  EXPECT_EQ(Summary.get("succeeded")->asNumber(), 1);
  EXPECT_EQ(Summary.get("failed")->asNumber(), 1);
  EXPECT_EQ(Summary.get("cancelled")->asNumber(), 1);
  ASSERT_EQ(Summary.get("items")->items().size(), 3u);
  EXPECT_EQ(Summary.get("items")->items()[1].get("status")->asString(),
            "cancelled");
  EXPECT_EQ(Summary.get("items")->items()[2].get("index")->asNumber(), 2);
}

TEST(ProtocolTest, V2FrameShapes) {
  // Ping advertises the protocol revision v1 clients simply ignore.
  json::Value Ping = parseResponse(formatPingResponse(""));
  ASSERT_NE(Ping.get("protocol"), nullptr);
  EXPECT_EQ(Ping.get("protocol")->asNumber(), 2);

  json::Value Ack = parseResponse(formatCancelResponse("r1", true));
  EXPECT_TRUE(responseOk(Ack));
  EXPECT_EQ(Ack.get("op")->asString(), "cancel");
  EXPECT_TRUE(Ack.get("cancelled")->asBool());

  // Events carry "event" and no "ok" — that is how clients demultiplex.
  json::Value Event = parseResponse(formatProgressEvent("r1", 512, 38469));
  EXPECT_EQ(Event.get("ok"), nullptr);
  EXPECT_EQ(Event.get("event")->asString(), "progress");
  EXPECT_EQ(Event.get("done")->asNumber(), 512);
  EXPECT_EQ(Event.get("total")->asNumber(), 38469);
}

//===----------------------------------------------------------------------===//
// Sharded LRU caches
//===----------------------------------------------------------------------===//

namespace {

struct FakeEntry {
  size_t Bytes;
  size_t approxBytes() const { return Bytes; }
};

CacheKey keyOf(uint64_t N) { return CacheKey{N, 0x42, 0x7}; }

} // namespace

TEST(ContextCacheTest, HitMissAndCounterAccounting) {
  ShardedLruCache<FakeEntry> Cache(CacheOptions{4, 1 << 20});
  bool Hit = true;
  auto First = Cache.getOrBuild(
      keyOf(1), [] { return std::make_shared<FakeEntry>(FakeEntry{100}); },
      &Hit);
  EXPECT_FALSE(Hit);
  auto Second = Cache.getOrBuild(
      keyOf(1),
      [] {
        ADD_FAILURE() << "builder must not run on a hit";
        return std::make_shared<FakeEntry>(FakeEntry{100});
      },
      &Hit);
  EXPECT_TRUE(Hit);
  EXPECT_EQ(First.get(), Second.get());

  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Hits, 1u);
  EXPECT_EQ(Stats.Misses, 1u);
  EXPECT_EQ(Stats.Entries, 1u);
  EXPECT_EQ(Stats.Bytes, 100u);
}

TEST(ContextCacheTest, ByteBudgetEvictsLeastRecentlyUsed) {
  // One shard so LRU order is global and the budget is exact.
  ShardedLruCache<FakeEntry> Cache(CacheOptions{1, 250});
  auto Build = [] { return std::make_shared<FakeEntry>(FakeEntry{100}); };
  Cache.getOrBuild(keyOf(1), Build);
  Cache.getOrBuild(keyOf(2), Build);
  // Touch key 1 so key 2 is the LRU victim.
  EXPECT_NE(Cache.lookup(keyOf(1)), nullptr);
  Cache.getOrBuild(keyOf(3), Build);

  CacheStats Stats = Cache.stats();
  EXPECT_EQ(Stats.Evictions, 1u);
  EXPECT_EQ(Stats.Entries, 2u);
  EXPECT_LE(Stats.Bytes, 250u);
  EXPECT_NE(Cache.lookup(keyOf(1)), nullptr);
  EXPECT_EQ(Cache.lookup(keyOf(2)), nullptr) << "LRU entry must be evicted";
  EXPECT_NE(Cache.lookup(keyOf(3)), nullptr);
}

TEST(ContextCacheTest, OversizedEntryStillCaches) {
  ShardedLruCache<FakeEntry> Cache(CacheOptions{1, 10});
  auto Entry = Cache.getOrBuild(
      keyOf(1), [] { return std::make_shared<FakeEntry>(FakeEntry{999}); });
  ASSERT_NE(Entry, nullptr);
  EXPECT_NE(Cache.lookup(keyOf(1)), nullptr)
      << "each shard retains its most recent entry even over budget";
}

TEST(ContextCacheTest, EvictionKeepsInFlightReadersAlive) {
  ShardedLruCache<FakeEntry> Cache(CacheOptions{1, 150});
  auto Held = Cache.getOrBuild(
      keyOf(1), [] { return std::make_shared<FakeEntry>(FakeEntry{100}); });
  Cache.getOrBuild(keyOf(2), [] {
    return std::make_shared<FakeEntry>(FakeEntry{100});
  });
  EXPECT_EQ(Cache.lookup(keyOf(1)), nullptr);
  ASSERT_NE(Held, nullptr);
  EXPECT_EQ(Held->approxBytes(), 100u) << "evicted entry stays readable";
}

TEST(ContextCacheTest, CachedContextSharesAcrossThreads) {
  Circuit C(3, "t");
  C.addCx(0, 1);
  C.addCx(1, 2);
  CouplingGraph Hw = makeLine(3);
  ContextCache Cache(CacheOptions{2, 64 << 20});
  CacheKey Key{fingerprint(C), fingerprint(Hw), 0};

  std::vector<std::shared_ptr<const CachedContext>> Results(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Results.size(); ++I)
    Threads.emplace_back([&, I] {
      Results[I] = Cache.getOrBuild(Key, [&] {
        return CachedContext::build(C, Hw, RoutingContextOptions{});
      });
    });
  for (std::thread &T : Threads)
    T.join();
  for (const auto &Bundle : Results) {
    ASSERT_NE(Bundle, nullptr);
    EXPECT_TRUE(Bundle->context().valid());
    // All callers converge on one shared bundle (racing first builders
    // may build twice, but the cache keeps exactly one).
    EXPECT_EQ(Bundle.get(), Results[0].get());
  }
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

TEST(SchedulerTest, RunsJobsAndDrainsOnShutdown) {
  std::atomic<int> Ran{0};
  {
    Scheduler Sched(SchedulerOptions{2, 64});
    for (int I = 0; I < 20; ++I) {
      SchedulerJob Job;
      Job.Run = [&](RoutingScratch &, CancellationToken &) { ++Ran; };
      ASSERT_TRUE(Sched.trySubmit(std::move(Job)) != nullptr);
    }
    Sched.shutdown();
  }
  EXPECT_EQ(Ran.load(), 20);
}

TEST(SchedulerTest, RejectsWhenQueueFull) {
  Scheduler Sched(SchedulerOptions{1, 2});
  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;

  // Block the single worker so subsequent jobs stay queued.
  SchedulerJob Blocker;
  Blocker.Run = [&](RoutingScratch &, CancellationToken &) {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Release; });
  };
  ASSERT_TRUE(Sched.trySubmit(std::move(Blocker)) != nullptr);
  // Give the worker a moment to pick the blocker up, then fill the queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  unsigned Accepted = 0;
  for (int I = 0; I < 8; ++I) {
    SchedulerJob Job;
    Job.Run = [](RoutingScratch &, CancellationToken &) {};
    if (Sched.trySubmit(std::move(Job)))
      ++Accepted;
  }
  EXPECT_LE(Accepted, 2u) << "bounded queue must reject overflow";
  EXPECT_GE(Sched.stats().Rejected, 6u);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
  }
  Cv.notify_all();
  Sched.shutdown();
}

TEST(SchedulerTest, ExpiredJobsRunOnExpiredInsteadOfRun) {
  std::atomic<int> Expired{0};
  std::atomic<int> Ran{0};
  {
    Scheduler Sched(SchedulerOptions{1, 16});
    SchedulerJob Job;
    // Deadline already passed at submit time: the worker must take the
    // OnExpired path (steady_clock is monotonic, so now >= deadline).
    Job.Deadline = std::chrono::steady_clock::now();
    Job.Run = [&](RoutingScratch &, CancellationToken &) { ++Ran; };
    Job.OnExpired = [&] { ++Expired; };
    ASSERT_TRUE(Sched.trySubmit(std::move(Job)) != nullptr);
    Sched.shutdown();
  }
  EXPECT_EQ(Expired.load(), 1);
  EXPECT_EQ(Ran.load(), 0);
}

TEST(SchedulerTest, SubmitAfterShutdownIsRejected) {
  Scheduler Sched(SchedulerOptions{1, 4});
  Sched.shutdown();
  SchedulerJob Job;
  Job.Run = [](RoutingScratch &, CancellationToken &) {};
  EXPECT_EQ(Sched.trySubmit(std::move(Job)), nullptr);
}

TEST(SchedulerTest, CancelledQueuedJobNeverRuns) {
  std::atomic<int> Ran{0};
  std::mutex Mu;
  std::condition_variable Cv;
  bool Release = false;
  Scheduler Sched(SchedulerOptions{1, 16});

  SchedulerJob Blocker;
  Blocker.Run = [&](RoutingScratch &, CancellationToken &) {
    std::unique_lock<std::mutex> Lock(Mu);
    Cv.wait(Lock, [&] { return Release; });
  };
  ASSERT_TRUE(Sched.trySubmit(std::move(Blocker)) != nullptr);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  SchedulerJob Victim;
  Victim.Run = [&](RoutingScratch &, CancellationToken &) { ++Ran; };
  auto Ticket = Sched.trySubmit(std::move(Victim));
  ASSERT_TRUE(Ticket != nullptr);
  EXPECT_EQ(Sched.stats().QueueDepth, 1u);
  // The single worker is blocked, so the victim must still be queued:
  // cancel() atomically claims it away from the workers, removes it from
  // the queue (no tombstone occupying capacity), and it never runs.
  EXPECT_EQ(Sched.cancel(Ticket), JobTicket::State::Queued);
  EXPECT_EQ(Sched.stats().QueueDepth, 0u)
      << "a cancelled queued job must free its capacity slot immediately";
  // A duplicate cancel reports the already-cancelled state.
  EXPECT_EQ(Sched.cancel(Ticket), JobTicket::State::CancelledWhileQueued);

  {
    std::lock_guard<std::mutex> Lock(Mu);
    Release = true;
  }
  Cv.notify_all();
  Sched.shutdown();
  EXPECT_EQ(Ran.load(), 0);
  EXPECT_EQ(Sched.stats().Cancelled, 1u);
}

TEST(SchedulerTest, CancellingRunningJobFiresItsToken) {
  std::atomic<bool> Started{false};
  std::atomic<bool> SawCancel{false};
  CancellationToken::Reason Observed = CancellationToken::Reason::None;
  Scheduler Sched(SchedulerOptions{1, 4});

  SchedulerJob Job;
  Job.Run = [&](RoutingScratch &, CancellationToken &Token) {
    Started = true;
    // Simulates a routing kernel polling once per front-layer step.
    while (!Token.cancelled())
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    Observed = Token.reason();
    SawCancel = true;
  };
  auto Ticket = Sched.trySubmit(std::move(Job));
  ASSERT_TRUE(Ticket != nullptr);
  while (!Started.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Ticket->cancel(), JobTicket::State::Running);
  Sched.shutdown();
  EXPECT_TRUE(SawCancel.load());
  EXPECT_EQ(Observed, CancellationToken::Reason::Cancelled);
  EXPECT_EQ(Ticket->state(), JobTicket::State::Done);
}

TEST(SchedulerTest, DeadlineFiresMidRunThroughTheToken) {
  // The deadline is armed on the token at submission, so a job that is
  // already running still observes it — the mid-route enforcement the
  // pre-v2 scheduler lacked.
  CancellationToken::Reason Observed = CancellationToken::Reason::None;
  auto Begin = std::chrono::steady_clock::now();
  {
    Scheduler Sched(SchedulerOptions{1, 4});
    SchedulerJob Job;
    Job.Deadline = Begin + std::chrono::milliseconds(50);
    Job.Run = [&](RoutingScratch &, CancellationToken &Token) {
      while (!Token.cancelled())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      Observed = Token.reason();
    };
    ASSERT_TRUE(Sched.trySubmit(std::move(Job)) != nullptr);
    Sched.shutdown();
  }
  EXPECT_EQ(Observed, CancellationToken::Reason::DeadlineExceeded);
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          Begin)
                .count(),
            5.0);
}

//===----------------------------------------------------------------------===//
// Server integration (real socket, blocking client)
//===----------------------------------------------------------------------===//

namespace {

/// Boots a server on a fresh endpoint of the requested transport
/// ("unix" = a fresh temp socket path, "tcp" = an ephemeral loopback
/// port); tears it down on scope exit. Clients connect to the *bound*
/// address, which for tcp carries the kernel-assigned port.
struct ServerFixture {
  ServerOptions Opts;
  std::unique_ptr<Server> Daemon;
  std::thread Waiter;

  explicit ServerFixture(unsigned Workers = 2,
                         const std::string &Transport = "unix") {
    Opts.Listen =
        Transport == "tcp" ? std::string("tcp:127.0.0.1:0") : testSocketPath();
    Opts.Workers = Workers;
    Opts.DefaultTimeoutSeconds = 30;
    Daemon = std::make_unique<Server>(Opts);
    Status Started = Daemon->start();
    EXPECT_TRUE(Started.ok()) << Started.message();
    Waiter = std::thread([this] { Daemon->wait(); });
  }

  ~ServerFixture() {
    Daemon->requestStop();
    if (Waiter.joinable())
      Waiter.join();
  }

  Client connect() {
    Client Conn;
    Status S = Conn.connect(Daemon->boundAddress(), 5.0);
    EXPECT_TRUE(S.ok()) << S.message();
    return Conn;
  }
};

} // namespace

/// The full Server integration suite runs once per transport: protocol
/// v2 behavior must be identical over unix: and tcp: endpoints.
class ServerTransportTest : public ::testing::TestWithParam<const char *> {};

INSTANTIATE_TEST_SUITE_P(Transports, ServerTransportTest,
                         ::testing::Values("unix", "tcp"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           return std::string(I.param);
                         });

TEST_P(ServerTransportTest, PingStatsAndRouteRoundTrip) {
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();

  std::string Response;
  ASSERT_TRUE(Conn.request("{\"op\":\"ping\"}", Response).ok());
  EXPECT_TRUE(responseOk(parseResponse(Response)));

  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm()).dump(), Response).ok());
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;
  EXPECT_FALSE(Doc.get("cache_hit")->asBool());
  const json::Value *Stats = Doc.get("stats");
  ASSERT_NE(Stats, nullptr);
  EXPECT_TRUE(Stats->get("verified")->asBool());
  EXPECT_GT(Stats->get("routed_gates")->asNumber(), 0);

  // The routed program re-imports and re-verifies client-side.
  const json::Value *Qasm = Doc.get("qasm");
  ASSERT_NE(Qasm, nullptr);
  qasm::ImportResult Routed = qasm::importQasm(Qasm->asString());
  ASSERT_TRUE(Routed.succeeded()) << Routed.Error;
  EXPECT_GT(Routed.Circ->size(), 0u);

  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", Response).ok());
  json::Value StatsDoc = parseResponse(Response);
  EXPECT_TRUE(responseOk(StatsDoc));
  // "submitted" is bumped before the route response exists; "completed"
  // is bumped after, so it may or may not be visible yet.
  EXPECT_EQ(StatsDoc.get("scheduler")->get("submitted")->asNumber(), 1);
  EXPECT_EQ(StatsDoc.get("server")->get("route_requests")->asNumber(), 1);
}

TEST_P(ServerTransportTest, RepeatedRequestHitsCacheByteIdentically) {
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();

  std::string First, Second;
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm()).dump(), First).ok());
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm()).dump(), Second).ok());
  json::Value FirstDoc = parseResponse(First);
  json::Value SecondDoc = parseResponse(Second);
  ASSERT_TRUE(responseOk(FirstDoc)) << First;
  ASSERT_TRUE(responseOk(SecondDoc)) << Second;
  EXPECT_FALSE(FirstDoc.get("cache_hit")->asBool());
  EXPECT_TRUE(SecondDoc.get("cache_hit")->asBool());
  EXPECT_TRUE(SecondDoc.get("result_cache_hit")->asBool());
  EXPECT_EQ(FirstDoc.get("qasm")->asString(),
            SecondDoc.get("qasm")->asString());

  // A different mapper shares the context but not the result.
  std::string Sabre;
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm(), "sabre").dump(), Sabre)
          .ok());
  json::Value SabreDoc = parseResponse(Sabre);
  ASSERT_TRUE(responseOk(SabreDoc)) << Sabre;
  EXPECT_FALSE(SabreDoc.get("result_cache_hit")->asBool());
  EXPECT_TRUE(SabreDoc.get("context_cache_hit")->asBool());
}

TEST_P(ServerTransportTest, ResponsesMatchDirectLibraryCalls) {
  // The acceptance-critical identity: what the service returns is what
  // the library produces, byte for byte.
  CouplingGraph Gen = makeAspen16();
  QuekoSpec Spec;
  Spec.Depth = 20;
  Spec.Seed = 7;
  QuekoInstance Inst = generateQueko(Gen, Spec);
  std::string Qasm = qasm::printQasm(Inst.Circ);

  qasm::ImportResult Reparsed = qasm::importQasm(Qasm);
  ASSERT_TRUE(Reparsed.succeeded());
  Circuit Logical =
      Reparsed.Circ->withoutNonUnitaries().decomposeThreeQubitGates();
  CouplingGraph Backend = makeBackendByName("aspen16");
  RoutingContext Ctx = RoutingContext::build(Logical, Backend);

  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();
  for (const char *Mapper : {"qlosure", "sabre", "cirq", "tket"}) {
    auto Direct = makeRouterByName(Mapper)->routeWithIdentity(Ctx);
    std::string Expected = qasm::printQasm(Direct.Routed);

    std::string Response;
    ASSERT_TRUE(
        Conn.request(routeRequest(Qasm, Mapper).dump(), Response).ok());
    json::Value Doc = parseResponse(Response);
    ASSERT_TRUE(responseOk(Doc)) << Response;
    EXPECT_EQ(Doc.get("qasm")->asString(), Expected) << Mapper;
  }
}

TEST_P(ServerTransportTest, MalformedRequestsGetStructuredErrorsAndConnectionSurvives) {
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();

  struct Case {
    std::string Line;
    std::string Code;
  };
  const Case Cases[] = {
      {"this is not json", errc::BadJson},
      {"{\"op\":\"route\"}", errc::BadRequest},
      {"{\"op\":\"warp\"}", errc::BadRequest},
      {routeRequest("qreg broken").dump(), errc::BadQasm},
      {routeRequest(sampleQasm(), "does-not-exist").dump(),
       errc::UnknownMapper},
      {routeRequest(sampleQasm(), "qlosure", "imaginary-qpu").dump(),
       errc::UnknownBackend},
      {routeRequest(sampleQasm(), "qlosure", "line").dump(),
       errc::UnknownBackend},
  };
  for (const Case &C : Cases) {
    std::string Response;
    ASSERT_TRUE(Conn.request(C.Line, Response).ok()) << C.Line;
    json::Value Doc = parseResponse(Response);
    EXPECT_FALSE(responseOk(Doc)) << Response;
    EXPECT_EQ(errorCode(Doc), C.Code) << Response;
    // The connection must stay usable after every error.
    ASSERT_TRUE(Conn.request("{\"op\":\"ping\"}", Response).ok());
    EXPECT_TRUE(responseOk(parseResponse(Response)));
  }

  // Oversized circuit for the chosen backend.
  std::string Response;
  std::string Wide = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n"
                     "qreg q[40];\ncx q[0],q[39];\n";
  ASSERT_TRUE(Conn.request(routeRequest(Wide, "qlosure", "aspen16").dump(),
                           Response)
                  .ok());
  EXPECT_EQ(errorCode(parseResponse(Response)), errc::TooLarge);
}

TEST_P(ServerTransportTest, AbsurdTimeoutIsClampedNotWrapped) {
  // Regression: a huge timeout_ms used to overflow the chrono deadline
  // arithmetic, wrapping it into the past and answering a *longer*
  // timeout with a spurious deadline_exceeded.
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();
  json::Value Req = routeRequest(sampleQasm());
  Req.set("timeout_ms", 1e300);
  std::string Response;
  ASSERT_TRUE(Conn.request(Req.dump(), Response).ok());
  json::Value Doc = parseResponse(Response);
  EXPECT_TRUE(responseOk(Doc)) << Response;
}

TEST_P(ServerTransportTest, ZeroDeadlineReportsDeadlineExceeded) {
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();
  json::Value Req = routeRequest(sampleQasm());
  // timeout_ms is interpreted relative to arrival; a microscopic budget
  // expires before any worker can pick the job up.
  Req.set("timeout_ms", 1e-6);
  std::string Response;
  ASSERT_TRUE(Conn.request(Req.dump(), Response).ok());
  EXPECT_EQ(errorCode(parseResponse(Response)), errc::DeadlineExceeded)
      << Response;
}

TEST(ServerTest, ShutdownOpStopsDaemonAndUnlinksSocket) {
  ServerOptions Opts;
  Opts.Listen = testSocketPath();
  Opts.Workers = 1;
  Server Daemon(Opts);
  ASSERT_TRUE(Daemon.start().ok());
  std::thread Waiter([&] { Daemon.wait(); });

  // Collect outcomes first and assert only after the waiter thread is
  // joined, so a failure cannot destroy a joinable std::thread.
  bool Connected = false, Requested = false;
  std::string Response;
  {
    Client Conn;
    Connected = Conn.connect(Opts.Listen, 5.0).ok();
    if (Connected)
      Requested = Conn.request("{\"op\":\"shutdown\"}", Response).ok();
  }
  Waiter.join();
  ASSERT_TRUE(Connected);
  ASSERT_TRUE(Requested) << "shutdown ack must arrive before teardown";
  json::Value Doc = parseResponse(Response);
  EXPECT_TRUE(responseOk(Doc));
  EXPECT_TRUE(Doc.get("stopping")->asBool());
  EXPECT_NE(::access(Opts.Listen.c_str(), F_OK), 0)
      << "socket file must be unlinked on shutdown";
}

TEST_P(ServerTransportTest, ConcurrentClientsShareTheCaches) {
  ServerFixture Fixture(2, GetParam());
  const unsigned NumClients = 4;
  std::vector<std::string> FirstResponses(NumClients);
  std::vector<std::thread> Clients;
  for (unsigned I = 0; I < NumClients; ++I)
    Clients.emplace_back([&, I] {
      Client Conn;
      if (!Conn.connect(Fixture.Daemon->boundAddress(), 5.0).ok())
        return;
      std::string Response;
      for (int R = 0; R < 3; ++R)
        if (!Conn.request(routeRequest(sampleQasm()).dump(), Response)
                 .ok())
          return;
      FirstResponses[I] = Response;
    });
  for (std::thread &T : Clients)
    T.join();

  // Every client converged on the same routed bytes.
  json::Value Reference = parseResponse(FirstResponses[0]);
  ASSERT_TRUE(responseOk(Reference));
  for (unsigned I = 1; I < NumClients; ++I) {
    json::Value Doc = parseResponse(FirstResponses[I]);
    ASSERT_TRUE(responseOk(Doc));
    EXPECT_EQ(Doc.get("qasm")->asString(),
              Reference.get("qasm")->asString());
  }
  // 12 route requests for one (circuit, backend, mapper): at most a few
  // racing first-misses, everything else served from cache.
  CacheStats Results = Fixture.Daemon->resultCacheStats();
  EXPECT_GE(Results.Hits, 8u);
}

//===----------------------------------------------------------------------===//
// Protocol v2: out-of-order responses, cancellation, progress
//===----------------------------------------------------------------------===//

TEST_P(ServerTransportTest, PipelinedFastResponseOvertakesSlowRoute) {
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();

  // Prime the result cache so the "fast" request is served inline by the
  // connection thread.
  std::string Prime;
  ASSERT_TRUE(Conn.request(routeRequest(sampleQasm()).dump(), Prime).ok());
  ASSERT_TRUE(responseOk(parseResponse(Prime))) << Prime;

  // Pipeline: a slow cache-miss route first, the cached route second.
  json::Value Slow = slowRouteRequest("slow");
  json::Value Fast = routeRequest(sampleQasm());
  Fast.set("id", "fast");
  ASSERT_TRUE(Conn.sendLine(Slow.dump()).ok());
  ASSERT_TRUE(Conn.sendLine(Fast.dump()).ok());

  // The acceptance-critical ordering: the fast response must arrive
  // FIRST even though it was submitted second — no head-of-line block.
  std::string First;
  ASSERT_TRUE(Conn.recvLine(First).ok());
  json::Value FirstDoc = parseResponse(First);
  ASSERT_TRUE(responseOk(FirstDoc)) << First;
  EXPECT_EQ(FirstDoc.get("id")->asString(), "fast") << First;
  EXPECT_TRUE(FirstDoc.get("result_cache_hit")->asBool());

  // Abort the slow route instead of waiting seconds for it; its final
  // response must be the `cancelled` error, within a second.
  auto CancelAt = std::chrono::steady_clock::now();
  ASSERT_TRUE(Conn.sendLine(cancelRequest("slow").dump()).ok());
  std::string Ack, Final;
  ASSERT_TRUE(Conn.recvResponseFor("slow", Ack, {}, "cancel").ok());
  EXPECT_TRUE(parseResponse(Ack).get("cancelled")->asBool()) << Ack;
  ASSERT_TRUE(Conn.recvResponseFor("slow", Final, {}, "route").ok());
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - CancelAt)
                       .count();
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;
  EXPECT_LT(Elapsed, 1.0)
      << "in-flight cancel must abort the route within one second";
}

TEST_P(ServerTransportTest, CancelAbortsQueuedJobWithoutWaitingForTheWorker) {
  // One worker: the first slow route occupies it, the second stays
  // queued. Cancelling the queued one must answer immediately — from the
  // connection thread — while the worker is still busy.
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  ASSERT_TRUE(Conn.sendLine(slowRouteRequest("busy", 400, 3).dump()).ok());
  // A distinct circuit (different seed) so the queued job is no cache hit.
  ASSERT_TRUE(Conn.sendLine(slowRouteRequest("stuck", 400, 4).dump()).ok());
  // Give the connection thread a moment to submit both jobs.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  auto CancelAt = std::chrono::steady_clock::now();
  ASSERT_TRUE(Conn.sendLine(cancelRequest("stuck").dump()).ok());
  std::string Ack, Final;
  ASSERT_TRUE(Conn.recvResponseFor("stuck", Ack, {}, "cancel").ok());
  EXPECT_TRUE(parseResponse(Ack).get("cancelled")->asBool()) << Ack;
  ASSERT_TRUE(Conn.recvResponseFor("stuck", Final, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;
  EXPECT_LT(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          CancelAt)
                .count(),
            1.0)
      << "a queued job's cancellation must not wait for the busy worker";

  // Cancelling an unknown id is an idempotent no-op ack.
  std::string NoOp;
  ASSERT_TRUE(Conn.sendLine(cancelRequest("never-existed").dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("never-existed", NoOp, {}, "cancel").ok());
  EXPECT_FALSE(parseResponse(NoOp).get("cancelled")->asBool()) << NoOp;

  // Clean up the in-flight route too (also: cancel of a running job).
  ASSERT_TRUE(Conn.sendLine(cancelRequest("busy").dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("busy", Final, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;
}

TEST_P(ServerTransportTest, DeadlineExpiresMidRouteNotJustAtPickup) {
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  // ~2.5 s of qmap routing with a 300 ms budget: the deadline fires while
  // the route is in flight, and the token aborts it within one poll.
  json::Value Req = slowRouteRequest("d");
  Req.set("timeout_ms", 300);
  auto SentAt = std::chrono::steady_clock::now();
  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  std::string Final;
  ASSERT_TRUE(Conn.recvResponseFor("d", Final, {}, "route").ok());
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - SentAt)
                       .count();
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::DeadlineExceeded)
      << Final;
  EXPECT_LT(Elapsed, 1.3)
      << "deadline_exceeded must arrive within ~1 s of expiry, not after "
         "the full route";
}

TEST_P(ServerTransportTest, ProgressEventsStreamDuringRouting) {
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  // A large circuit on the fast mapper: tens of thousands of gates, so
  // the ~5%-step throttle yields a healthy event stream.
  CouplingGraph Gen = makeSycamore54();
  QuekoSpec Spec;
  Spec.Depth = 2000;
  Spec.Seed = 5;
  std::string Qasm = qasm::printQasm(generateQueko(Gen, Spec).Circ);
  json::Value Req = routeRequest(Qasm, "qlosure", "sycamore54");
  Req.set("id", "p");
  Req.set("progress", true);
  Req.set("include_qasm", false);

  std::vector<std::string> Events;
  std::string Final;
  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor(
                      "p", Final,
                      [&](const std::string &Line) {
                        Events.push_back(Line);
                      },
                      "route")
                  .ok());
  json::Value Doc = parseResponse(Final);
  ASSERT_TRUE(responseOk(Doc)) << Final;
  ASSERT_FALSE(Events.empty())
      << "a progress-enabled route over 38k gates must emit events";
  size_t PrevDone = 0;
  for (const std::string &Line : Events) {
    json::Value Event = parseResponse(Line);
    EXPECT_EQ(Event.get("event")->asString(), "progress");
    EXPECT_EQ(Event.get("id")->asString(), "p");
    size_t Done = static_cast<size_t>(Event.get("done")->asNumber());
    size_t Total = static_cast<size_t>(Event.get("total")->asNumber());
    EXPECT_LE(Done, Total);
    EXPECT_GE(Done, PrevDone) << "progress must be monotone";
    PrevDone = Done;
  }
}

TEST(ServerTest, ShutdownStillAnswersPipelinedInFlightRoutes) {
  // The exactly-one-final-response guarantee must hold across shutdown:
  // a route in flight when the shutdown ack goes out is drained — and
  // its response delivered — before teardown severs the connection.
  ServerOptions Opts;
  Opts.Listen = testSocketPath();
  Opts.Workers = 1;
  Server Daemon(Opts);
  ASSERT_TRUE(Daemon.start().ok());
  std::thread Waiter([&] { Daemon.wait(); });

  bool GotAck = false, GotRoute = false, RouteOk = false;
  std::string Final;
  {
    Client Conn;
    if (Conn.connect(Opts.Listen, 5.0).ok()) {
      std::string Ack;
      GotAck = Conn.sendLine(slowRouteRequest("r1", 100).dump()).ok() &&
               Conn.sendLine("{\"op\":\"shutdown\",\"id\":\"s\"}").ok() &&
               Conn.recvResponseFor("s", Ack, {}, "shutdown").ok();
      if (GotAck && Conn.recvResponseFor("r1", Final, {}, "route").ok()) {
        GotRoute = true;
        RouteOk = responseOk(parseResponse(Final));
      }
    }
  }
  Waiter.join();
  ASSERT_TRUE(GotAck);
  ASSERT_TRUE(GotRoute)
      << "an in-flight route must receive its final response across "
         "shutdown, not be dropped by teardown";
  EXPECT_TRUE(RouteOk) << Final;
}

TEST_P(ServerTransportTest, DisconnectCancelsOrphanedJobs) {
  // A dropped pipelined connection must not leave workers routing dead
  // circuits: its queued jobs are discarded and its running job aborted.
  ServerFixture Fixture(1, GetParam());
  {
    Client Doomed = Fixture.connect();
    ASSERT_TRUE(Doomed.sendLine(slowRouteRequest("a", 400, 21).dump()).ok());
    ASSERT_TRUE(Doomed.sendLine(slowRouteRequest("b", 400, 22).dump()).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  } // Connection drops with one job running and one queued.

  Client Probe = Fixture.connect();
  auto Begin = std::chrono::steady_clock::now();
  bool Freed = false;
  std::string Response;
  while (std::chrono::steady_clock::now() - Begin < std::chrono::seconds(5)) {
    ASSERT_TRUE(Probe.request("{\"op\":\"stats\"}", Response).ok());
    json::Value Doc = parseResponse(Response);
    const json::Value *Sched = Doc.get("scheduler");
    if (Sched->get("cancelled")->asNumber() >= 1 &&
        Sched->get("queue_depth")->asNumber() == 0) {
      Freed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(Freed)
      << "orphaned jobs must be cancelled promptly after disconnect: "
      << Response;
}

TEST_P(ServerTransportTest, DuplicateInFlightIdIsRejected) {
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  ASSERT_TRUE(Conn.sendLine(slowRouteRequest("dup").dump()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  // Same id while the first is still routing: structured rejection.
  json::Value Again = routeRequest(sampleQasm());
  Again.set("id", "dup");
  ASSERT_TRUE(Conn.sendLine(Again.dump()).ok());
  std::string Rejection;
  ASSERT_TRUE(Conn.recvResponseFor("dup", Rejection, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Rejection)), errc::BadRequest)
      << Rejection;

  // After the first completes (cancel it), the id is reusable.
  std::string Final;
  ASSERT_TRUE(Conn.sendLine(cancelRequest("dup").dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("dup", Final, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;
  ASSERT_TRUE(Conn.sendLine(Again.dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("dup", Final, {}, "route").ok());
  EXPECT_TRUE(responseOk(parseResponse(Final))) << Final;
}

//===----------------------------------------------------------------------===//
// Batch sessions
//===----------------------------------------------------------------------===//

namespace {

json::Value batchRequest(
    const std::string &Id,
    const std::vector<std::pair<std::string, std::string>> &Items,
    const std::string &Mapper = "qlosure",
    const std::string &Backend = "aspen16") {
  json::Value Req = json::Value::object();
  Req.set("op", "batch");
  Req.set("id", Id);
  Req.set("mapper", Mapper);
  Req.set("backend", Backend);
  json::Value Arr = json::Value::array();
  for (const auto &[Name, Qasm] : Items) {
    json::Value Item = json::Value::object();
    if (!Name.empty())
      Item.set("name", Name);
    Item.set("qasm", Qasm);
    Arr.push(std::move(Item));
  }
  Req.set("items", std::move(Arr));
  return Req;
}

} // namespace

TEST_P(ServerTransportTest, BatchRoutesItemsAndSummaryArrivesLast) {
  ServerFixture Fixture(2, GetParam());
  Client Conn = Fixture.connect();

  // Two routable circuits plus one import failure: partial failure is
  // per-item, not batch-fatal.
  QuekoSpec Spec;
  Spec.Depth = 20;
  Spec.Seed = 9;
  CouplingGraph Gen = makeAspen16();
  std::string Third = qasm::printQasm(generateQueko(Gen, Spec).Circ);
  json::Value Req = batchRequest(
      "b1",
      {{"good", sampleQasm()}, {"broken", "qreg oops"}, {"", Third}});
  std::vector<std::string> ItemFrames;
  std::string Summary;
  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor(
                      "b1", Summary,
                      [&](const std::string &Line) {
                        ItemFrames.push_back(Line);
                      },
                      "batch")
                  .ok());

  // Ordering contract: by the time the summary is readable, every item
  // frame has already been delivered.
  ASSERT_EQ(ItemFrames.size(), 3u)
      << "the summary must arrive after all item frames";
  bool SawIndex[3] = {false, false, false};
  for (const std::string &Line : ItemFrames) {
    json::Value Frame = parseResponse(Line);
    EXPECT_EQ(Frame.get("ok"), nullptr) << Line;
    EXPECT_EQ(Frame.get("event")->asString(), "batch_item");
    EXPECT_EQ(Frame.get("id")->asString(), "b1");
    size_t Index = static_cast<size_t>(Frame.get("index")->asNumber());
    ASSERT_LT(Index, 3u);
    EXPECT_FALSE(SawIndex[Index]) << "one frame per item";
    SawIndex[Index] = true;
    if (Index == 1) {
      EXPECT_EQ(errorCode(Frame), errc::BadQasm) << Line;
      EXPECT_EQ(Frame.get("stats"), nullptr);
    } else {
      ASSERT_NE(Frame.get("stats"), nullptr) << Line;
      EXPECT_TRUE(Frame.get("stats")->get("verified")->asBool());
      EXPECT_EQ(Frame.get("error"), nullptr);
      ASSERT_NE(Frame.get("qasm"), nullptr);
    }
  }

  json::Value Doc = parseResponse(Summary);
  ASSERT_TRUE(responseOk(Doc)) << Summary;
  EXPECT_EQ(Doc.get("total")->asNumber(), 3);
  EXPECT_EQ(Doc.get("succeeded")->asNumber(), 2);
  EXPECT_EQ(Doc.get("failed")->asNumber(), 1);
  EXPECT_EQ(Doc.get("cancelled")->asNumber(), 0);
  ASSERT_EQ(Doc.get("items")->items().size(), 3u);
  EXPECT_EQ(Doc.get("items")->items()[0].get("status")->asString(), "ok");
  EXPECT_EQ(Doc.get("items")->items()[1].get("status")->asString(),
            "bad_qasm");
  EXPECT_EQ(Doc.get("items")->items()[0].get("name")->asString(), "good");

  // A batch item's routing populates the shared result cache: the same
  // circuit as a plain route is now a hit with identical bytes.
  std::string RouteLine;
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm()).dump(), RouteLine).ok());
  json::Value RouteDoc = parseResponse(RouteLine);
  ASSERT_TRUE(responseOk(RouteDoc)) << RouteLine;
  EXPECT_TRUE(RouteDoc.get("result_cache_hit")->asBool());
  for (const std::string &Line : ItemFrames) {
    json::Value Frame = parseResponse(Line);
    if (static_cast<size_t>(Frame.get("index")->asNumber()) == 0) {
      EXPECT_EQ(Frame.get("qasm")->asString(),
                RouteDoc.get("qasm")->asString());
    }
  }

  // Arrival-side counters.
  std::string StatsLine;
  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", StatsLine).ok());
  json::Value Stats = parseResponse(StatsLine);
  EXPECT_EQ(Stats.get("server")->get("batch_requests")->asNumber(), 1);
  EXPECT_EQ(Stats.get("server")->get("batch_items")->asNumber(), 3);
}

TEST_P(ServerTransportTest, BatchCancelAbortsAllItems) {
  // One worker, three slow items: the first runs, the rest stay queued.
  // One cancel of the batch id must abort all of them — queued items
  // immediately from the connection thread, the running one through its
  // token — and the summary must still arrive last.
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  json::Value Req = batchRequest("b1",
                                 {{"s0", deepQuekoQasm(300, 31)},
                                  {"s1", deepQuekoQasm(300, 32)},
                                  {"s2", deepQuekoQasm(300, 33)}},
                                 "qmap", "sherbrooke2x");
  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  // Let the connection thread submit and a worker pick up item 0.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The queued items' cancelled frames are written by the canceller
  // *before* the cancel ack, so the event callback must be installed on
  // both receives.
  std::vector<std::string> ItemFrames;
  auto Collect = [&](const std::string &Line) {
    ItemFrames.push_back(Line);
  };
  auto CancelAt = std::chrono::steady_clock::now();
  ASSERT_TRUE(Conn.sendLine(cancelRequest("b1").dump()).ok());
  std::string Ack;
  ASSERT_TRUE(Conn.recvResponseFor("b1", Ack, Collect, "cancel").ok());
  EXPECT_TRUE(parseResponse(Ack).get("cancelled")->asBool()) << Ack;

  std::string Summary;
  ASSERT_TRUE(Conn.recvResponseFor("b1", Summary, Collect, "batch").ok());
  double Elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - CancelAt)
                       .count();
  EXPECT_LT(Elapsed, 2.0)
      << "whole-batch cancel must not wait out the routes";

  json::Value Doc = parseResponse(Summary);
  ASSERT_TRUE(responseOk(Doc)) << Summary;
  EXPECT_EQ(Doc.get("total")->asNumber(), 3);
  EXPECT_EQ(Doc.get("cancelled")->asNumber(), 3);
  EXPECT_EQ(Doc.get("succeeded")->asNumber(), 0);
  EXPECT_EQ(ItemFrames.size(), 3u)
      << "every item reports before the summary";
  for (const std::string &Line : ItemFrames)
    EXPECT_EQ(errorCode(parseResponse(Line)), errc::Cancelled) << Line;

  // The id is released once the summary is out: reusable.
  std::string Reuse;
  ASSERT_TRUE(
      Conn.sendLine(
              batchRequest("b1", {{"ok", sampleQasm()}}).dump())
          .ok());
  ASSERT_TRUE(Conn.recvResponseFor("b1", Reuse, {}, "batch").ok());
  EXPECT_TRUE(responseOk(parseResponse(Reuse))) << Reuse;
}

TEST(ServerTest, BatchAdmissionIsAllOrNothing) {
  // Queue capacity 2, batch of 4 distinct circuits: the batch cannot be
  // enqueued contiguously, so it is rejected as a whole — one queue_full
  // response, zero item frames, nothing scheduled.
  ServerOptions Opts;
  Opts.Listen = testSocketPath();
  Opts.Workers = 1;
  Opts.QueueCapacity = 2;
  Server Daemon(Opts);
  ASSERT_TRUE(Daemon.start().ok());
  std::thread Waiter([&] { Daemon.wait(); });
  {
    Client Conn;
    ASSERT_TRUE(Conn.connect(Opts.Listen, 5.0).ok());

    // Four distinct backend-sized circuits, so every item genuinely
    // needs a queue slot (nothing is inline-disposed).
    CouplingGraph Gen = makeAspen16();
    std::vector<std::pair<std::string, std::string>> Items;
    for (uint64_t Seed = 41; Seed < 45; ++Seed) {
      QuekoSpec Spec;
      Spec.Depth = 20;
      Spec.Seed = Seed;
      Items.emplace_back(formatString("c%llu",
                                      static_cast<unsigned long long>(Seed)),
                         qasm::printQasm(generateQueko(Gen, Spec).Circ));
    }
    json::Value Req = batchRequest("big", Items);
    size_t ItemFrames = 0;
    std::string Response;
    ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
    ASSERT_TRUE(Conn.recvResponseFor(
                        "big", Response,
                        [&](const std::string &) { ++ItemFrames; },
                        "batch")
                    .ok());
    EXPECT_EQ(errorCode(parseResponse(Response)), errc::QueueFull)
        << Response;
    EXPECT_EQ(ItemFrames, 0u)
        << "a rejected batch must emit no item frames";

    std::string StatsLine;
    ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", StatsLine).ok());
    json::Value Stats = parseResponse(StatsLine);
    EXPECT_EQ(Stats.get("scheduler")->get("queue_depth")->asNumber(), 0)
        << "no partial batch may linger in the queue";

    // A batch that fits is accepted on the same connection.
    std::vector<std::string> Frames;
    json::Value Small = batchRequest("fits", {{"a", sampleQasm()}});
    ASSERT_TRUE(Conn.sendLine(Small.dump()).ok());
    ASSERT_TRUE(Conn.recvResponseFor(
                        "fits", Response,
                        [&](const std::string &Line) {
                          Frames.push_back(Line);
                        },
                        "batch")
                    .ok());
    EXPECT_TRUE(responseOk(parseResponse(Response))) << Response;
    EXPECT_EQ(Frames.size(), 1u);
  }
  Daemon.stop();
  Waiter.join();
}

TEST_P(ServerTransportTest, BatchIdSharesNamespaceWithRoutes) {
  // A live batch id cannot be taken by a route, nor a live route id by a
  // batch — per-connection ids are one namespace.
  ServerFixture Fixture(1, GetParam());
  Client Conn = Fixture.connect();

  ASSERT_TRUE(Conn.sendLine(slowRouteRequest("x", 300, 51).dump()).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  std::string Rejection;
  ASSERT_TRUE(
      Conn.sendLine(batchRequest("x", {{"a", sampleQasm()}}).dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("x", Rejection, {}, "batch").ok());
  EXPECT_EQ(errorCode(parseResponse(Rejection)), errc::BadRequest)
      << Rejection;

  std::string Final;
  ASSERT_TRUE(Conn.sendLine(cancelRequest("x").dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor("x", Final, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;
}

//===----------------------------------------------------------------------===//
// In-flight request coalescing + durable result store
//===----------------------------------------------------------------------===//

namespace {

/// Sends a progress-enabled slow route as \p Id and blocks until its
/// first progress event: the point where the leader is provably
/// mid-route, so an identical request sent from now on must coalesce
/// onto its flight rather than route again.
void startLeaderMidRoute(Client &Leader, const std::string &Id,
                         const std::string &Qasm) {
  json::Value Req = routeRequest(Qasm, "qmap", "sherbrooke2x");
  Req.set("id", Id);
  Req.set("progress", true);
  ASSERT_TRUE(Leader.sendLine(Req.dump()).ok());
  std::string Frame;
  ASSERT_TRUE(Leader.recvLine(Frame).ok());
  EXPECT_EQ(parseResponse(Frame).get("event")->asString(), "progress")
      << Frame;
}

/// Polls `stats` until the server-wide coalesced counter reaches
/// \p Want (the follower-attached handshake of the cancellation tests).
void awaitCoalescedCount(Client &Control, uint64_t Want) {
  for (int I = 0; I < 400; ++I) {
    std::string Line;
    ASSERT_TRUE(Control.request("{\"op\":\"stats\"}", Line).ok());
    if (parseResponse(Line).get("server")->get("coalesced")->asNumber() >=
        static_cast<double>(Want))
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "follower never attached to the leader's flight";
}

} // namespace

TEST(CoalescingTest, ConcurrentIdenticalRoutesShareOneJob) {
  ServerFixture Fixture(2);
  const std::string Qasm = deepQuekoQasm(300, 61);

  Client Leader = Fixture.connect();
  startLeaderMidRoute(Leader, "lead", Qasm);

  const unsigned NFollowers = 3;
  std::vector<Client> Followers;
  for (unsigned I = 0; I < NFollowers; ++I) {
    Followers.push_back(Fixture.connect());
    json::Value Req = routeRequest(Qasm, "qmap", "sherbrooke2x");
    Req.set("id", formatString("f%u", I));
    ASSERT_TRUE(Followers.back().sendLine(Req.dump()).ok());
  }

  // Followers are delivered before the leader's own response write, in
  // *attach* order — which across distinct connections is not the send
  // order. Drain them concurrently so no unread multi-hundred-KB
  // response can block the delivering worker on a full socket buffer.
  std::vector<std::string> FollowerResps(NFollowers);
  {
    std::vector<std::thread> Readers;
    for (unsigned I = 0; I < NFollowers; ++I)
      Readers.emplace_back([&, I] {
        Followers[I].recvResponseFor(formatString("f%u", I),
                                     FollowerResps[I], {}, "route");
      });
    for (std::thread &R : Readers)
      R.join();
  }
  std::vector<json::Value> FollowerDocs;
  for (unsigned I = 0; I < NFollowers; ++I) {
    json::Value Doc = parseResponse(FollowerResps[I]);
    ASSERT_TRUE(responseOk(Doc)) << FollowerResps[I];
    const json::Value *Coalesced = Doc.get("coalesced");
    ASSERT_NE(Coalesced, nullptr) << FollowerResps[I];
    EXPECT_TRUE(Coalesced->asBool());
    FollowerDocs.push_back(std::move(Doc));
  }

  std::string LeadResp;
  ASSERT_TRUE(Leader.recvResponseFor("lead", LeadResp, {}, "route").ok());
  json::Value LeadDoc = parseResponse(LeadResp);
  ASSERT_TRUE(responseOk(LeadDoc)) << LeadResp;
  EXPECT_EQ(LeadDoc.get("coalesced"), nullptr)
      << "the leader routed; only followers are coalesced";

  // Every follower carries the leader's payload byte for byte: same
  // routed program, same stats.
  for (const json::Value &Doc : FollowerDocs) {
    EXPECT_EQ(Doc.get("qasm")->asString(), LeadDoc.get("qasm")->asString());
    EXPECT_EQ(Doc.get("stats")->dump(), LeadDoc.get("stats")->dump());
  }

  Client Control = Fixture.connect();
  std::string StatsLine;
  ASSERT_TRUE(Control.request("{\"op\":\"stats\"}", StatsLine).ok());
  json::Value Stats = parseResponse(StatsLine);
  EXPECT_EQ(Stats.get("scheduler")->get("submitted")->asNumber(), 1)
      << "N identical concurrent routes must execute exactly one job";
  EXPECT_EQ(Stats.get("server")->get("coalesced")->asNumber(), NFollowers);
}

TEST(CoalescingTest, FollowerCancelLeavesLeaderRunning) {
  ServerFixture Fixture(2);
  const std::string Qasm = deepQuekoQasm(300, 62);

  Client Leader = Fixture.connect();
  startLeaderMidRoute(Leader, "lead", Qasm);

  Client Follower = Fixture.connect();
  json::Value Req = routeRequest(Qasm, "qmap", "sherbrooke2x");
  Req.set("id", "f");
  ASSERT_TRUE(Follower.sendLine(Req.dump()).ok());
  Client Control = Fixture.connect();
  awaitCoalescedCount(Control, 1);

  // Cancelling the follower answers it immediately — and only it.
  ASSERT_TRUE(Follower.sendLine(cancelRequest("f").dump()).ok());
  std::string Ack, Final;
  ASSERT_TRUE(Follower.recvResponseFor("f", Ack, {}, "cancel").ok());
  ASSERT_TRUE(Follower.recvResponseFor("f", Final, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(Final)), errc::Cancelled) << Final;

  // The leader is untouched: its route completes normally.
  std::string LeadResp;
  ASSERT_TRUE(Leader.recvResponseFor("lead", LeadResp, {}, "route").ok());
  EXPECT_TRUE(responseOk(parseResponse(LeadResp))) << LeadResp;
}

TEST(CoalescingTest, LeaderFailurePropagatesStructuredErrorToFollowers) {
  ServerFixture Fixture(2);
  const std::string Qasm = deepQuekoQasm(300, 63);

  Client Leader = Fixture.connect();
  startLeaderMidRoute(Leader, "lead", Qasm);

  Client Follower = Fixture.connect();
  json::Value Req = routeRequest(Qasm, "qmap", "sherbrooke2x");
  Req.set("id", "f");
  ASSERT_TRUE(Follower.sendLine(Req.dump()).ok());
  Client Control = Fixture.connect();
  awaitCoalescedCount(Control, 1);

  // Killing the leader mid-route fails the flight: the follower gets the
  // leader's error as a structured response, not a hang or a crash.
  ASSERT_TRUE(Leader.sendLine(cancelRequest("lead").dump()).ok());
  std::string Ack, LeadFinal;
  ASSERT_TRUE(Leader.recvResponseFor("lead", Ack, {}, "cancel").ok());
  ASSERT_TRUE(Leader.recvResponseFor("lead", LeadFinal, {}, "route").ok());
  EXPECT_EQ(errorCode(parseResponse(LeadFinal)), errc::Cancelled)
      << LeadFinal;

  std::string Final;
  ASSERT_TRUE(Follower.recvResponseFor("f", Final, {}, "route").ok());
  json::Value Doc = parseResponse(Final);
  EXPECT_EQ(errorCode(Doc), errc::Cancelled) << Final;
  const json::Value *Error = Doc.get("error");
  ASSERT_NE(Error, nullptr);
  EXPECT_NE(Error->get("message")->asString().find("coalesced leader"),
            std::string::npos)
      << Final;
}

TEST(CoalescingTest, DuplicateBatchItemsCoalesce) {
  ServerFixture Fixture(2);
  Client Conn = Fixture.connect();
  const std::string Slow = deepQuekoQasm(200, 64);
  json::Value Req =
      batchRequest("b", {{"a", Slow}, {"b", Slow}}, "qmap", "sherbrooke2x");

  std::vector<std::string> Frames;
  std::string Summary;
  ASSERT_TRUE(Conn.sendLine(Req.dump()).ok());
  ASSERT_TRUE(Conn.recvResponseFor(
                      "b", Summary,
                      [&](const std::string &L) { Frames.push_back(L); },
                      "batch")
                  .ok());
  ASSERT_TRUE(responseOk(parseResponse(Summary))) << Summary;
  ASSERT_EQ(Frames.size(), 2u);

  unsigned Deduped = 0;
  std::vector<std::string> Qasms;
  for (const std::string &Frame : Frames) {
    json::Value Item = parseResponse(Frame);
    ASSERT_EQ(Item.get("error"), nullptr) << Frame;
    Qasms.push_back(Item.get("qasm")->asString());
    const json::Value *Coalesced = Item.get("coalesced");
    const json::Value *CacheHit = Item.get("result_cache_hit");
    if ((Coalesced && Coalesced->asBool()) ||
        (CacheHit && CacheHit->asBool()))
      ++Deduped;
  }
  ASSERT_EQ(Qasms.size(), 2u);
  EXPECT_EQ(Qasms[0], Qasms[1]) << "identical items, identical programs";
  // One item routed; the duplicate coalesced onto its flight (or, if the
  // route outran the attach, was served from the result cache). Either
  // way exactly one job executed.
  EXPECT_EQ(Deduped, 1u);
  std::string StatsLine;
  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", StatsLine).ok());
  json::Value Stats = parseResponse(StatsLine);
  EXPECT_EQ(Stats.get("scheduler")->get("submitted")->asNumber(), 1)
      << "a duplicate batch item must not route twice";
}

TEST(ResultStoreServiceTest, WarmResultsSurviveRestart) {
  std::string StorePath = formatString("/tmp/qls-store-%d-%u.qstore",
                                       static_cast<int>(getpid()), 0u);
  std::remove(StorePath.c_str());
  ServerOptions Opts;
  Opts.Workers = 2;
  Opts.DefaultTimeoutSeconds = 30;
  Opts.StorePath = StorePath;

  std::string FirstQasm;
  {
    Opts.Listen = testSocketPath();
    Server Daemon(Opts);
    Status Started = Daemon.start();
    ASSERT_TRUE(Started.ok()) << Started.message();
    std::thread Waiter([&] { Daemon.wait(); });
    Client Conn;
    ASSERT_TRUE(Conn.connect(Daemon.boundAddress(), 5.0).ok());
    std::string Resp;
    ASSERT_TRUE(Conn.request(routeRequest(sampleQasm()).dump(), Resp).ok());
    json::Value Doc = parseResponse(Resp);
    ASSERT_TRUE(responseOk(Doc)) << Resp;
    EXPECT_FALSE(Doc.get("result_cache_hit")->asBool());
    FirstQasm = Doc.get("qasm")->asString();
    Daemon.requestStop();
    Waiter.join();
  }

  // A fresh daemon on the same store serves the routed result as a warm
  // hit — byte-identical to the pre-restart response.
  {
    Opts.Listen = testSocketPath();
    Server Daemon(Opts);
    Status Started = Daemon.start();
    ASSERT_TRUE(Started.ok()) << Started.message();
    std::thread Waiter([&] { Daemon.wait(); });
    Client Conn;
    ASSERT_TRUE(Conn.connect(Daemon.boundAddress(), 5.0).ok());
    std::string Resp;
    ASSERT_TRUE(Conn.request(routeRequest(sampleQasm()).dump(), Resp).ok());
    json::Value Doc = parseResponse(Resp);
    ASSERT_TRUE(responseOk(Doc)) << Resp;
    EXPECT_TRUE(Doc.get("result_cache_hit")->asBool())
        << "a stored result must survive the restart";
    EXPECT_EQ(Doc.get("qasm")->asString(), FirstQasm);

    std::string StatsLine;
    ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", StatsLine).ok());
    const json::Value *Store = parseResponse(StatsLine).get("store");
    ASSERT_NE(Store, nullptr) << StatsLine;
    EXPECT_GE(Store->get("records")->asNumber(), 1);
    EXPECT_GE(Store->get("hits")->asNumber(), 1);
    Daemon.requestStop();
    Waiter.join();
  }
  std::remove(StorePath.c_str());
}
