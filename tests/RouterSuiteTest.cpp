//===- tests/RouterSuiteTest.cpp - cross-router correctness sweeps ----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property sweep: every mapper must produce a verified routing (hardware
/// adjacency + dependence preservation) on every (circuit, topology) pair,
/// insert zero SWAPs when none are needed, and respect basic sanity
/// invariants. Parameterized over the full mapper registry.
///
//===----------------------------------------------------------------------===//

#include "baselines/QmapAstar.h"
#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "route/Verify.h"
#include "support/Random.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

struct SweepCase {
  std::string RouterName;
  std::string TopologyName;
  std::string CircuitName;
};

std::ostream &operator<<(std::ostream &OS, const SweepCase &C) {
  return OS << C.RouterName << "_" << C.TopologyName << "_" << C.CircuitName;
}

CouplingGraph topologyByName(const std::string &Name) {
  if (Name == "line8")
    return makeLine(8);
  if (Name == "ring8")
    return makeRing(8);
  if (Name == "line16")
    return makeLine(16);
  if (Name == "ring16")
    return makeRing(16);
  if (Name == "grid4x4")
    return makeGrid(4, 4);
  if (Name == "kings4x4")
    return makeKingsGrid(4, 4);
  if (Name == "aspen16")
    return makeAspen16();
  return makeLine(8);
}

Circuit circuitByName(const std::string &Name) {
  if (Name == "ghz8")
    return makeGhz(8);
  if (Name == "qft6")
    return makeQft(6);
  if (Name == "bv8")
    return makeBv(8);
  if (Name == "adder8")
    return makeAdder(8);
  if (Name == "qaoa8")
    return makeQaoa(8, 2);
  if (Name == "queko16") {
    QuekoSpec Spec;
    Spec.Depth = 15;
    Spec.Seed = 77;
    Circuit C = generateQueko(makeAspen16(), Spec).Circ;
    C.setName("queko16");
    return C;
  }
  return makeGhz(8);
}

class RouterSweepTest : public ::testing::TestWithParam<SweepCase> {};

} // namespace

TEST_P(RouterSweepTest, ProducesVerifiedRouting) {
  const SweepCase &Case = GetParam();
  CouplingGraph Hw = topologyByName(Case.TopologyName);
  Circuit C = circuitByName(Case.CircuitName);
  // makeSweepCases only pairs circuits with devices that fit them; a
  // mismatch here is a sweep-construction bug, not a case to skip (silent
  // GTEST_SKIPs hid the entire queko16 column on 8-qubit devices for a
  // while).
  ASSERT_LE(C.numQubits(), Hw.numQubits())
      << "sweep paired circuit " << Case.CircuitName << " with too-small "
      << "device " << Case.TopologyName;
  auto Router = makeRouterByName(Case.RouterName);
  RoutingResult R = Router->routeWithIdentity(C, Hw);
  VerifyResult V = verifyRouting(C, Hw, R);
  EXPECT_TRUE(V.Ok) << V.Message;
  // Program gates + swaps account for the whole routed circuit.
  EXPECT_EQ(R.Routed.size(), C.size() + R.NumSwaps);
  // Depth can only grow or stay equal under routing.
  EXPECT_GE(R.Routed.depth(), C.depth());
}

static std::vector<SweepCase> makeSweepCases() {
  std::vector<SweepCase> Cases;
  for (const char *Router :
       {"qlosure", "sabre", "qmap", "cirq", "tket"}) {
    for (const char *Topology :
         {"line8", "ring8", "grid4x4", "kings4x4", "aspen16"})
      for (const char *Circ : {"ghz8", "qft6", "bv8", "adder8", "qaoa8"})
        Cases.push_back({Router, Topology, Circ});
    // queko16 is a 16-qubit circuit: pair it with 16-qubit devices only
    // (on line8/ring8 it used to be registered and then silently
    // GTEST_SKIPped, so no mapper was ever exercised on those params).
    for (const char *Topology :
         {"line16", "ring16", "grid4x4", "kings4x4", "aspen16"})
      Cases.push_back({Router, Topology, "queko16"});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllRouters, RouterSweepTest, ::testing::ValuesIn(makeSweepCases()),
    [](const ::testing::TestParamInfo<SweepCase> &Info) {
      std::string Name = Info.param.RouterName + "_" +
                         Info.param.TopologyName + "_" +
                         Info.param.CircuitName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Zero-swap and structural properties
//===----------------------------------------------------------------------===//

namespace {

class ZeroSwapTest : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(ZeroSwapTest, AdjacentCircuitNeedsNoSwaps) {
  // GHZ on a line is already hardware-compatible under identity mapping.
  CouplingGraph Hw = makeLine(8);
  Circuit C = makeGhz(8);
  auto Router = makeRouterByName(GetParam());
  RoutingResult R = Router->routeWithIdentity(C, Hw);
  EXPECT_EQ(R.NumSwaps, 0u);
  EXPECT_EQ(R.Routed.depth(), C.depth());
  EXPECT_TRUE(R.FinalMapping == R.InitialMapping);
}

TEST_P(ZeroSwapTest, SingleQubitCircuitUntouched) {
  CouplingGraph Hw = makeRing(5);
  Circuit C(5);
  for (int I = 0; I < 5; ++I)
    C.add1Q(GateKind::H, I);
  auto Router = makeRouterByName(GetParam());
  RoutingResult R = Router->routeWithIdentity(C, Hw);
  EXPECT_EQ(R.NumSwaps, 0u);
  EXPECT_EQ(R.Routed.size(), 5u);
}

TEST_P(ZeroSwapTest, EmptyCircuit) {
  CouplingGraph Hw = makeLine(3);
  Circuit C(3);
  auto Router = makeRouterByName(GetParam());
  RoutingResult R = Router->routeWithIdentity(C, Hw);
  EXPECT_EQ(R.Routed.size(), 0u);
  EXPECT_EQ(R.NumSwaps, 0u);
}

TEST_P(ZeroSwapTest, DeterministicAcrossRuns) {
  CouplingGraph Hw = makeGrid(3, 3);
  Circuit C = makeQft(6);
  auto Router1 = makeRouterByName(GetParam());
  auto Router2 = makeRouterByName(GetParam());
  RoutingResult A = Router1->routeWithIdentity(C, Hw);
  RoutingResult B = Router2->routeWithIdentity(C, Hw);
  EXPECT_EQ(A.NumSwaps, B.NumSwaps);
  EXPECT_EQ(A.Routed.size(), B.Routed.size());
}

INSTANTIATE_TEST_SUITE_P(AllRouters, ZeroSwapTest,
                         ::testing::Values("qlosure", "sabre", "qmap",
                                           "cirq", "tket"));

//===----------------------------------------------------------------------===//
// Qlosure-specific behaviour
//===----------------------------------------------------------------------===//

TEST(QlosureSpecificTest, AblationVariantsAllRouteCorrectly) {
  CouplingGraph Hw = makeGrid(3, 3);
  Circuit C = makeQft(7);
  for (bool Weights : {false, true}) {
    for (bool Layers : {false, true}) {
      QlosureOptions Opts;
      Opts.UseDependencyWeights = Weights;
      Opts.UseLayerStructure = Layers;
      QlosureRouter Router(Opts);
      RoutingResult R = Router.routeWithIdentity(C, Hw);
      VerifyResult V = verifyRouting(C, Hw, R);
      EXPECT_TRUE(V.Ok) << V.Message << " (weights=" << Weights
                        << " layers=" << Layers << ")";
    }
  }
}

TEST(QlosureSpecificTest, WeightEngineChoiceDoesNotBreakRouting) {
  CouplingGraph Hw = makeAspen16();
  Circuit C = makeAdder(14);
  for (WeightEngine Engine :
       {WeightEngine::Exact, WeightEngine::Affine, WeightEngine::Auto}) {
    QlosureOptions Opts;
    Opts.Weights.Engine = Engine;
    QlosureRouter Router(Opts);
    RoutingResult R = Router.routeWithIdentity(C, Hw);
    EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
  }
}

TEST(QlosureSpecificTest, LookaheadConstantOverride) {
  CouplingGraph Hw = makeLine(6);
  Circuit C = makeQft(6);
  for (unsigned K : {1u, 3u, 8u}) {
    QlosureOptions Opts;
    Opts.LookaheadConstant = K;
    QlosureRouter Router(Opts);
    RoutingResult R = Router.routeWithIdentity(C, Hw);
    EXPECT_TRUE(verifyRouting(C, Hw, R).Ok) << "c=" << K;
  }
}

TEST(QlosureSpecificTest, RunsFromNonTrivialInitialMapping) {
  CouplingGraph Hw = makeGrid(3, 3);
  Circuit C = makeQft(7);
  Rng Generator(1234);
  QubitMapping Initial =
      QubitMapping::random(C.numQubits(), Hw.numQubits(), Generator);
  QlosureRouter Router;
  RoutingResult R = Router.route(C, Hw, Initial);
  EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
  EXPECT_TRUE(R.InitialMapping == Initial);
}

TEST(QlosureSpecificTest, DependencyWeightsReduceSwapsOnQueko) {
  // The paper's core claim in miniature: dependency weighting should not
  // lose to distance-only on a dense QUEKO instance (averaged over seeds).
  CouplingGraph Gen = makeKingsGrid(4, 4);
  CouplingGraph Hw = makeGrid(4, 4);
  size_t SwapsFull = 0, SwapsDistance = 0;
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    QuekoSpec Spec;
    Spec.Depth = 20;
    Spec.Seed = Seed;
    Circuit C = generateQueko(Gen, Spec).Circ;
    QlosureOptions Full;
    QlosureRouter FullRouter(Full);
    SwapsFull += FullRouter.routeWithIdentity(C, Hw).NumSwaps;
    QlosureOptions Distance;
    Distance.UseDependencyWeights = false;
    Distance.UseLayerStructure = false;
    QlosureRouter DistanceRouter(Distance);
    SwapsDistance += DistanceRouter.routeWithIdentity(C, Hw).NumSwaps;
  }
  EXPECT_LE(SwapsFull, SwapsDistance + SwapsDistance / 10);
}

TEST(QmapSpecificTest, TimeoutFlagOnTinyBudget) {
  QmapOptions Opts;
  Opts.TimeBudgetSeconds = 0.0; // Everything times out.
  QmapAstarRouter Router(Opts);
  CouplingGraph Hw = makeLine(6);
  Circuit C = makeQft(6);
  RoutingResult R = Router.routeWithIdentity(C, Hw);
  EXPECT_TRUE(R.TimedOut);
  // Even timed out, the greedy completion must stay correct.
  EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
}
