//===- tests/AffineLiftTest.cpp - QRANE-lite lifter tests --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "presburger/Counting.h"
#include "qasm/Importer.h"
#include "route/RoutingContext.h"
#include "topology/Backends.h"

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

using namespace qlosure;
using namespace qlosure::presburger;

namespace {

/// The paper's Sec. III-C example trace:
///   CX q[0],q[1]; CX q[1],q[3]; CX q[2],q[5]; CX q[3],q[7];
/// lifts to one statement with q1 = [i] -> [i] and q2 = [i] -> [2i + 1].
Circuit paperTrace() {
  Circuit C(8);
  C.addCx(0, 1);
  C.addCx(1, 3);
  C.addCx(2, 5);
  C.addCx(3, 7);
  return C;
}

} // namespace

TEST(LifterTest, PaperExampleLiftsToOneStatement) {
  AffineCircuit AC = liftCircuit(paperTrace());
  ASSERT_EQ(AC.numStatements(), 1u);
  const MacroGate &S = AC.statement(0);
  EXPECT_EQ(S.Kind, GateKind::CX);
  EXPECT_EQ(S.TripCount, 4);
  EXPECT_EQ(S.Scale[0], 1);
  EXPECT_EQ(S.Offset[0], 0);
  EXPECT_EQ(S.Scale[1], 2);
  EXPECT_EQ(S.Offset[1], 1);
}

TEST(LifterTest, AccessRelationMatchesGates) {
  AffineCircuit AC = liftCircuit(paperTrace());
  IntegerMap Q2 = AC.accessRelation(0, 1);
  EXPECT_TRUE(Q2.contains({0}, {1}));
  EXPECT_TRUE(Q2.contains({3}, {7}));
  EXPECT_FALSE(Q2.contains({1}, {4}));
  EXPECT_FALSE(Q2.contains({4}, {9})); // Outside the domain.
}

TEST(LifterTest, IterationDomainCardinality) {
  AffineCircuit AC = liftCircuit(paperTrace());
  auto Card = countPoints(AC.iterationDomain(0));
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 4);
}

TEST(LifterTest, ScheduleIsShiftedIdentity) {
  Circuit C(4);
  C.add1Q(GateKind::H, 0); // Statement 0 (singleton).
  C.addCx(0, 1);
  C.addCx(1, 2);
  C.addCx(2, 3);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  IntegerMap Sched = AC.schedule(1);
  EXPECT_TRUE(Sched.contains({0}, {1})); // Instance 0 at trace time 1.
  EXPECT_TRUE(Sched.contains({2}, {3}));
}

TEST(LifterTest, UseMapBindsTimeToQubits) {
  AffineCircuit AC = liftCircuit(paperTrace());
  IntegerMap Use = AC.useMap(0);
  EXPECT_TRUE(Use.contains({0}, {0, 1}));
  EXPECT_TRUE(Use.contains({2}, {2, 5}));
  EXPECT_FALSE(Use.contains({2}, {2, 4}));
}

TEST(LifterTest, CoordsOfGateRoundTrip) {
  Circuit C(6);
  C.add1Q(GateKind::H, 5);  // Singleton.
  for (int I = 0; I < 5; ++I) // Run of 5.
    C.addCx(I, I + 1 == 5 ? 0 : I + 1);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(AC.numGates(), 6);
  for (int64_t T = 0; T < AC.numGates(); ++T) {
    GateCoords Coords = AC.coordsOfGate(T);
    const MacroGate &S = AC.statement(Coords.Statement);
    EXPECT_EQ(S.time(Coords.Instance), T);
  }
}

TEST(LifterTest, BreaksRunOnKindChange) {
  Circuit C(8);
  C.addCx(0, 1);
  C.addCx(1, 2);
  C.addCx(2, 3);
  C.add2Q(GateKind::CZ, 3, 4); // Kind change ends the run.
  C.add2Q(GateKind::CZ, 4, 5);
  C.add2Q(GateKind::CZ, 5, 6);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_EQ(AC.statement(0).Kind, GateKind::CX);
  EXPECT_EQ(AC.statement(1).Kind, GateKind::CZ);
}

TEST(LifterTest, BreaksRunOnAffineMismatch) {
  Circuit C(10);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(4, 5); // Stride (2, 2) run of 3.
  C.addCx(9, 2); // Does not extend it.
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_EQ(AC.statement(0).TripCount, 3);
  EXPECT_EQ(AC.statement(1).TripCount, 1);
}

TEST(LifterTest, ShortRunsSplitToSingletons) {
  // Two gates with an accidental stride stay singletons under the default
  // MinRunLength of 3.
  Circuit C(6);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.add1Q(GateKind::H, 5);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(AC.numStatements(), 3u);
  for (size_t S = 0; S < 3; ++S)
    EXPECT_EQ(AC.statement(S).TripCount, 1);
}

TEST(LifterTest, StatementsTileTheTrace) {
  Circuit C(12);
  for (int R = 0; R < 3; ++R) {
    for (int I = 0; I + 1 < 12; I += 2)
      C.addCx(I, I + 1);
    for (int I = 0; I < 12; ++I)
      C.add1Q(GateKind::H, I);
  }
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(static_cast<size_t>(AC.numGates()), C.size());
  int64_t Expected = 0;
  for (size_t S = 0; S < AC.numStatements(); ++S) {
    EXPECT_EQ(AC.statement(S).Start, Expected);
    Expected += AC.statement(S).TripCount;
  }
  EXPECT_EQ(Expected, AC.numGates());
}

TEST(LifterTest, CompressionOnRegularCircuit) {
  // A long GHZ chain compresses into very few statements.
  Circuit C(64);
  C.add1Q(GateKind::H, 0);
  for (int I = 0; I + 1 < 64; ++I)
    C.addCx(I, I + 1);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_LE(AC.numStatements(), 3u);
  EXPECT_GT(AC.compressionRatio(), 20.0);
}

TEST(LifterTest, ZeroStrideRunOnFixedQubits) {
  Circuit C(2);
  for (int I = 0; I < 6; ++I)
    C.addCx(0, 1);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 1u);
  EXPECT_EQ(AC.statement(0).Scale[0], 0);
  EXPECT_EQ(AC.statement(0).Scale[1], 0);
  EXPECT_EQ(AC.statement(0).TripCount, 6);
}

TEST(LifterTest, MinRunLengthBoundary) {
  // A run of exactly MinRunLength compresses; one gate shorter splits
  // into singletons. Default MinRunLength is 3.
  Circuit AtBoundary(8);
  AtBoundary.addCx(0, 1);
  AtBoundary.addCx(2, 3);
  AtBoundary.addCx(4, 5);
  AffineCircuit AC = liftCircuit(AtBoundary);
  ASSERT_EQ(AC.numStatements(), 1u);
  EXPECT_EQ(AC.statement(0).TripCount, 3);

  Circuit Below(8);
  Below.addCx(0, 1);
  Below.addCx(2, 3);
  AffineCircuit Split = liftCircuit(Below);
  EXPECT_EQ(Split.numStatements(), 2u);
}

TEST(LifterTest, MinRunLengthIsConfigurable) {
  Circuit C(8);
  C.addCx(0, 1);
  C.addCx(2, 3);

  LifterOptions Pairs;
  Pairs.MinRunLength = 2;
  AffineCircuit AC = liftCircuit(C, Pairs);
  ASSERT_EQ(AC.numStatements(), 1u);
  EXPECT_EQ(AC.statement(0).TripCount, 2);

  // Raising the bar past an existing run length splits it back apart.
  Circuit Triple(8);
  Triple.addCx(0, 1);
  Triple.addCx(2, 3);
  Triple.addCx(4, 5);
  LifterOptions Strict;
  Strict.MinRunLength = 4;
  AffineCircuit Split = liftCircuit(Triple, Strict);
  EXPECT_EQ(Split.numStatements(), 3u);
  EXPECT_EQ(static_cast<size_t>(Split.numGates()), Triple.size());
}

TEST(LifterTest, NegativeStridesLift) {
  // Descending CX ladder: both operands stride by -1.
  Circuit C(8);
  C.addCx(7, 6);
  C.addCx(6, 5);
  C.addCx(5, 4);
  C.addCx(4, 3);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 1u);
  const MacroGate &S = AC.statement(0);
  EXPECT_EQ(S.TripCount, 4);
  EXPECT_EQ(S.Scale[0], -1);
  EXPECT_EQ(S.Offset[0], 7);
  EXPECT_EQ(S.Scale[1], -1);
  EXPECT_EQ(S.Offset[1], 6);
  IntegerMap Q1 = AC.accessRelation(0, 0);
  EXPECT_TRUE(Q1.contains({3}, {4}));
  EXPECT_FALSE(Q1.contains({4}, {3})); // Outside the domain.
}

TEST(LifterTest, InterleavedMultiStatementPeriods) {
  // Three iterations of (CX ladder, H sweep): the lifter recovers one
  // statement per half-iteration, in schedule order, tiling the trace.
  Circuit C(6);
  for (int R = 0; R < 3; ++R) {
    for (int I = 0; I + 1 < 6; I += 2)
      C.addCx(I, I + 1);
    for (int I = 0; I < 6; ++I)
      C.add1Q(GateKind::H, I);
  }
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 6u);
  for (size_t S = 0; S < 6; ++S) {
    const MacroGate &M = AC.statement(S);
    if (S % 2 == 0) {
      EXPECT_EQ(M.Kind, GateKind::CX);
      EXPECT_EQ(M.TripCount, 3);
      EXPECT_EQ(M.Scale[0], 2);
    } else {
      EXPECT_EQ(M.Kind, GateKind::H);
      EXPECT_EQ(M.TripCount, 6);
      EXPECT_EQ(M.Scale[0], 1);
    }
  }
  EXPECT_EQ(static_cast<size_t>(AC.numGates()), C.size());
}

TEST(LifterTest, CoordsOfGateRoundTripAcrossStatementBoundaries) {
  // Alternating multi-gate statements: every trace index must map back
  // to (statement, instance) whose schedule time is that index, and the
  // access relations must agree with the concrete gate operands.
  Circuit C(9);
  for (int R = 0; R < 4; ++R) {
    C.addCx(0, 1);
    C.addCx(3, 4);
    C.addCx(6, 7);
    C.add1Q(GateKind::X, R % 2); // Alternates: singleton statements.
  }
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(static_cast<size_t>(AC.numGates()), C.size());
  for (int64_t T = 0; T < AC.numGates(); ++T) {
    GateCoords Coords = AC.coordsOfGate(T);
    const MacroGate &S = AC.statement(Coords.Statement);
    EXPECT_EQ(S.time(Coords.Instance), T);
    for (unsigned Op = 0; Op < S.NumOperands; ++Op)
      EXPECT_EQ(S.qubit(Op, Coords.Instance),
                C.gate(static_cast<size_t>(T))
                    .Qubits[Op]);
  }
}

TEST(LifterTest, BarrieredQasmIsRejectedRecoverably) {
  // Regression: a barrier/measure in the input used to trip an assert in
  // the lifter; now checkLiftable reports a recoverable Status (and
  // liftCircuit itself tolerates the gates).
  std::ifstream In(QLOSURE_TEST_DATA_DIR "/barriered_ghz.qasm");
  ASSERT_TRUE(In.good());
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  qasm::ImportResult Imported =
      qasm::importQasm(Buffer.str(), "barriered-ghz");
  ASSERT_TRUE(Imported.succeeded()) << Imported.Error;
  const Circuit &Circ = *Imported.Circ;

  Status Liftable = checkLiftable(Circ);
  EXPECT_FALSE(Liftable.ok());
  EXPECT_NE(Liftable.message().find("barrier"), std::string::npos)
      << Liftable.message();

  // liftCircuit no longer asserts: the trace still tiles completely.
  AffineCircuit AC = liftCircuit(Circ);
  EXPECT_EQ(static_cast<size_t>(AC.numGates()), Circ.size());

  // The routing front door rejects the same circuit recoverably.
  CouplingGraph Hw = makeLine(4);
  RoutingContext Ctx = RoutingContext::build(Circ, Hw);
  EXPECT_FALSE(Ctx.valid());

  // Stripping non-unitaries makes both paths accept.
  Circuit Stripped = Circ.withoutNonUnitaries();
  EXPECT_TRUE(checkLiftable(Stripped).ok());
  EXPECT_TRUE(RoutingContext::build(Stripped, Hw).valid());
}
