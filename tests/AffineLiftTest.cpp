//===- tests/AffineLiftTest.cpp - QRANE-lite lifter tests --------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "presburger/Counting.h"

#include <gtest/gtest.h>

using namespace qlosure;
using namespace qlosure::presburger;

namespace {

/// The paper's Sec. III-C example trace:
///   CX q[0],q[1]; CX q[1],q[3]; CX q[2],q[5]; CX q[3],q[7];
/// lifts to one statement with q1 = [i] -> [i] and q2 = [i] -> [2i + 1].
Circuit paperTrace() {
  Circuit C(8);
  C.addCx(0, 1);
  C.addCx(1, 3);
  C.addCx(2, 5);
  C.addCx(3, 7);
  return C;
}

} // namespace

TEST(LifterTest, PaperExampleLiftsToOneStatement) {
  AffineCircuit AC = liftCircuit(paperTrace());
  ASSERT_EQ(AC.numStatements(), 1u);
  const MacroGate &S = AC.statement(0);
  EXPECT_EQ(S.Kind, GateKind::CX);
  EXPECT_EQ(S.TripCount, 4);
  EXPECT_EQ(S.Scale[0], 1);
  EXPECT_EQ(S.Offset[0], 0);
  EXPECT_EQ(S.Scale[1], 2);
  EXPECT_EQ(S.Offset[1], 1);
}

TEST(LifterTest, AccessRelationMatchesGates) {
  AffineCircuit AC = liftCircuit(paperTrace());
  IntegerMap Q2 = AC.accessRelation(0, 1);
  EXPECT_TRUE(Q2.contains({0}, {1}));
  EXPECT_TRUE(Q2.contains({3}, {7}));
  EXPECT_FALSE(Q2.contains({1}, {4}));
  EXPECT_FALSE(Q2.contains({4}, {9})); // Outside the domain.
}

TEST(LifterTest, IterationDomainCardinality) {
  AffineCircuit AC = liftCircuit(paperTrace());
  auto Card = countPoints(AC.iterationDomain(0));
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 4);
}

TEST(LifterTest, ScheduleIsShiftedIdentity) {
  Circuit C(4);
  C.add1Q(GateKind::H, 0); // Statement 0 (singleton).
  C.addCx(0, 1);
  C.addCx(1, 2);
  C.addCx(2, 3);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  IntegerMap Sched = AC.schedule(1);
  EXPECT_TRUE(Sched.contains({0}, {1})); // Instance 0 at trace time 1.
  EXPECT_TRUE(Sched.contains({2}, {3}));
}

TEST(LifterTest, UseMapBindsTimeToQubits) {
  AffineCircuit AC = liftCircuit(paperTrace());
  IntegerMap Use = AC.useMap(0);
  EXPECT_TRUE(Use.contains({0}, {0, 1}));
  EXPECT_TRUE(Use.contains({2}, {2, 5}));
  EXPECT_FALSE(Use.contains({2}, {2, 4}));
}

TEST(LifterTest, CoordsOfGateRoundTrip) {
  Circuit C(6);
  C.add1Q(GateKind::H, 5);  // Singleton.
  for (int I = 0; I < 5; ++I) // Run of 5.
    C.addCx(I, I + 1 == 5 ? 0 : I + 1);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(AC.numGates(), 6);
  for (int64_t T = 0; T < AC.numGates(); ++T) {
    GateCoords Coords = AC.coordsOfGate(T);
    const MacroGate &S = AC.statement(Coords.Statement);
    EXPECT_EQ(S.time(Coords.Instance), T);
  }
}

TEST(LifterTest, BreaksRunOnKindChange) {
  Circuit C(8);
  C.addCx(0, 1);
  C.addCx(1, 2);
  C.addCx(2, 3);
  C.add2Q(GateKind::CZ, 3, 4); // Kind change ends the run.
  C.add2Q(GateKind::CZ, 4, 5);
  C.add2Q(GateKind::CZ, 5, 6);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_EQ(AC.statement(0).Kind, GateKind::CX);
  EXPECT_EQ(AC.statement(1).Kind, GateKind::CZ);
}

TEST(LifterTest, BreaksRunOnAffineMismatch) {
  Circuit C(10);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(4, 5); // Stride (2, 2) run of 3.
  C.addCx(9, 2); // Does not extend it.
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 2u);
  EXPECT_EQ(AC.statement(0).TripCount, 3);
  EXPECT_EQ(AC.statement(1).TripCount, 1);
}

TEST(LifterTest, ShortRunsSplitToSingletons) {
  // Two gates with an accidental stride stay singletons under the default
  // MinRunLength of 3.
  Circuit C(6);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.add1Q(GateKind::H, 5);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(AC.numStatements(), 3u);
  for (size_t S = 0; S < 3; ++S)
    EXPECT_EQ(AC.statement(S).TripCount, 1);
}

TEST(LifterTest, StatementsTileTheTrace) {
  Circuit C(12);
  for (int R = 0; R < 3; ++R) {
    for (int I = 0; I + 1 < 12; I += 2)
      C.addCx(I, I + 1);
    for (int I = 0; I < 12; ++I)
      C.add1Q(GateKind::H, I);
  }
  AffineCircuit AC = liftCircuit(C);
  EXPECT_EQ(static_cast<size_t>(AC.numGates()), C.size());
  int64_t Expected = 0;
  for (size_t S = 0; S < AC.numStatements(); ++S) {
    EXPECT_EQ(AC.statement(S).Start, Expected);
    Expected += AC.statement(S).TripCount;
  }
  EXPECT_EQ(Expected, AC.numGates());
}

TEST(LifterTest, CompressionOnRegularCircuit) {
  // A long GHZ chain compresses into very few statements.
  Circuit C(64);
  C.add1Q(GateKind::H, 0);
  for (int I = 0; I + 1 < 64; ++I)
    C.addCx(I, I + 1);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_LE(AC.numStatements(), 3u);
  EXPECT_GT(AC.compressionRatio(), 20.0);
}

TEST(LifterTest, ZeroStrideRunOnFixedQubits) {
  Circuit C(2);
  for (int I = 0; I < 6; ++I)
    C.addCx(0, 1);
  AffineCircuit AC = liftCircuit(C);
  ASSERT_EQ(AC.numStatements(), 1u);
  EXPECT_EQ(AC.statement(0).Scale[0], 0);
  EXPECT_EQ(AC.statement(0).Scale[1], 0);
  EXPECT_EQ(AC.statement(0).TripCount, 6);
}
