//===- tests/FingerprintTest.cpp - content-hash cache key tests -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Fingerprint.h"

#include "baselines/RouterRegistry.h"
#include "circuit/Circuit.h"
#include "route/RoutingContext.h"
#include "route/Verify.h"
#include "service/ContextCache.h"
#include "topology/Backends.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

Circuit makeSample() {
  Circuit C(4, "sample");
  C.add1Q(GateKind::H, 0);
  C.addCx(0, 1);
  C.add1Q(GateKind::RZ, 2, 0.25);
  C.addCx(2, 3);
  C.addCx(1, 2);
  return C;
}

} // namespace

TEST(FingerprintTest, EqualCircuitsHashEqual) {
  Circuit A = makeSample();
  Circuit B = makeSample();
  B.setName("renamed"); // Cosmetic: must not change the key.
  EXPECT_EQ(fingerprint(A), fingerprint(B));
}

TEST(FingerprintTest, GatePerturbationsChangeTheHash) {
  Circuit Base = makeSample();
  uint64_t BaseFp = fingerprint(Base);

  Circuit KindChanged = makeSample();
  KindChanged.gatesMutable()[1].Kind = GateKind::CZ;
  EXPECT_NE(fingerprint(KindChanged), BaseFp);

  Circuit OperandChanged = makeSample();
  OperandChanged.gatesMutable()[1].Qubits[1] = 2;
  EXPECT_NE(fingerprint(OperandChanged), BaseFp);

  Circuit ParamChanged = makeSample();
  ParamChanged.gatesMutable()[2].Params[0] = 0.26;
  EXPECT_NE(fingerprint(ParamChanged), BaseFp);

  Circuit GateDropped = makeSample();
  GateDropped.gatesMutable().pop_back();
  EXPECT_NE(fingerprint(GateDropped), BaseFp);

  Circuit WiderRegister(5, "sample");
  for (const Gate &G : Base.gates())
    WiderRegister.addGate(G);
  EXPECT_NE(fingerprint(WiderRegister), BaseFp);
}

TEST(FingerprintTest, GateOrderMatters) {
  Circuit A(3);
  A.addCx(0, 1);
  A.addCx(1, 2);
  Circuit B(3);
  B.addCx(1, 2);
  B.addCx(0, 1);
  EXPECT_NE(fingerprint(A), fingerprint(B));
}

TEST(FingerprintTest, GraphHashCoversEdgesAndErrors) {
  CouplingGraph Base = makeAspen16();
  uint64_t BaseFp = fingerprint(Base);

  // Same topology built again hashes equal, whatever the derived state.
  CouplingGraph Again = makeAspen16();
  EXPECT_EQ(fingerprint(Again), BaseFp);

  // Distances are derived, not content.
  CouplingGraph WithDistances = makeAspen16();
  WithDistances.computeDistances();
  EXPECT_EQ(fingerprint(WithDistances), BaseFp);

  // An extra edge changes the hash.
  CouplingGraph ExtraEdge = makeAspen16();
  ExtraEdge.addEdge(0, 5);
  ASSERT_FALSE(Base.areAdjacent(0, 5));
  EXPECT_NE(fingerprint(ExtraEdge), BaseFp);

  // Installing a calibration changes the hash; a different calibration
  // changes it again.
  CouplingGraph Cal1 = makeAspen16();
  applySyntheticErrorModel(Cal1, 1);
  CouplingGraph Cal2 = makeAspen16();
  applySyntheticErrorModel(Cal2, 2);
  EXPECT_NE(fingerprint(Cal1), BaseFp);
  EXPECT_NE(fingerprint(Cal1), fingerprint(Cal2));

  // Perturbing one edge's error rate changes the hash.
  CouplingGraph Cal1Tweaked = makeAspen16();
  applySyntheticErrorModel(Cal1Tweaked, 1);
  auto Edge = Cal1Tweaked.edges().front();
  Cal1Tweaked.setEdgeError(Edge.first, Edge.second,
                           Cal1Tweaked.edgeError(Edge.first, Edge.second) *
                               2.0);
  EXPECT_NE(fingerprint(Cal1Tweaked), fingerprint(Cal1));
}

TEST(FingerprintTest, EdgeOrderInsensitive) {
  CouplingGraph A(3);
  A.addEdge(0, 1);
  A.addEdge(1, 2);
  CouplingGraph B(3);
  B.addEdge(1, 2);
  B.addEdge(0, 1);
  EXPECT_EQ(fingerprint(A), fingerprint(B));
}

TEST(FingerprintTest, ContextOptionsHashDistinguishesConfigs) {
  RoutingContextOptions Default;
  RoutingContextOptions Weighted;
  Weighted.RequireWeightedDistances = true;
  RoutingContextOptions ExactEngine;
  ExactEngine.Weights.Engine = WeightEngine::Exact;
  EXPECT_EQ(fingerprint(Default), fingerprint(RoutingContextOptions{}));
  EXPECT_NE(fingerprint(Default), fingerprint(Weighted));
  EXPECT_NE(fingerprint(Default), fingerprint(ExactEngine));
}

// The satellite edge cases: the degenerate circuits a fingerprint can key
// must actually be routable (or cleanly rejected) by the mappers behind
// the cache — never a crash.
TEST(FingerprintTest, EmptyCircuitKeysAndRoutes) {
  Circuit Empty(0, "empty");
  uint64_t Fp = fingerprint(Empty);
  EXPECT_EQ(Fp, fingerprint(Circuit(0, "also-empty")));

  CouplingGraph Hw = makeAspen16();
  auto Bundle = service::CachedContext::build(
      Empty, Hw, RoutingContextOptions{});
  ASSERT_TRUE(Bundle->context().valid());
  for (const std::string &Name : paperRouterNames()) {
    auto Mapper = makeRouterByName(Name);
    RoutingResult Result = Mapper->routeWithIdentity(Bundle->context());
    EXPECT_EQ(Result.Routed.size(), 0u) << Name;
    EXPECT_EQ(Result.NumSwaps, 0u) << Name;
  }
}

TEST(FingerprintTest, OneQubitCircuitKeysAndRoutes) {
  Circuit OneQubit(1, "one");
  OneQubit.add1Q(GateKind::H, 0);
  OneQubit.add1Q(GateKind::T, 0);
  uint64_t Fp = fingerprint(OneQubit);
  EXPECT_NE(Fp, fingerprint(Circuit(1, "empty-one")));

  CouplingGraph Hw = makeAspen16();
  auto Bundle = service::CachedContext::build(
      OneQubit, Hw, RoutingContextOptions{});
  ASSERT_TRUE(Bundle->context().valid());
  for (const std::string &Name : paperRouterNames()) {
    auto Mapper = makeRouterByName(Name);
    RoutingResult Result = Mapper->routeWithIdentity(Bundle->context());
    EXPECT_EQ(Result.NumSwaps, 0u) << Name;
    VerifyResult Check = verifyRouting(OneQubit, Hw, Result);
    EXPECT_TRUE(Check.Ok) << Name << ": " << Check.Message;
  }
}
