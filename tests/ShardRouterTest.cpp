//===- tests/ShardRouterTest.cpp - Fleet router tests ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the fleet tier: the consistent-hash ring (distribution,
/// stickiness, address stability), the request sharding key, the
/// stats-to-Prometheus walker and the fleet stats merge, and a
/// two-daemon integration suite — byte-identical routed responses
/// through the router, shard-sticky cache hits, backpressure-aware
/// queue_full retries, degraded-but-serving after a shard dies, and the
/// aggregated metrics/stats surfaces.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Metrics.h"
#include "service/Protocol.h"
#include "service/Server.h"
#include "service/ShardRouter.h"

#include "qasm/Printer.h"
#include "support/Fingerprint.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "topology/Backends.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

std::string tempSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return formatString("/tmp/qlr-%d-%u.sock", static_cast<int>(getpid()),
                      Counter.fetch_add(1));
}

std::string sampleQasm(unsigned Variant = 0) {
  std::string Qasm = "OPENQASM 2.0;\n"
                     "include \"qelib1.inc\";\n"
                     "qreg q[5];\n"
                     "cx q[0],q[1];\n"
                     "cx q[1],q[3];\n"
                     "cx q[0],q[2];\n"
                     "cx q[4],q[1];\n"
                     "cx q[2],q[3];\n";
  // Distinct variants shard independently: append extra gates.
  for (unsigned I = 0; I < Variant; ++I)
    Qasm += formatString("cx q[%u],q[%u];\n", I % 5, (I + 1) % 5);
  return Qasm;
}

json::Value routeRequest(const std::string &Qasm,
                         const std::string &Mapper = "qlosure",
                         const std::string &Backend = "aspen16") {
  json::Value Req = json::Value::object();
  Req.set("op", "route");
  Req.set("qasm", Qasm);
  Req.set("mapper", Mapper);
  Req.set("backend", Backend);
  return Req;
}

json::Value parseResponse(const std::string &Line) {
  json::ParseResult Parsed = json::parse(Line);
  EXPECT_TRUE(Parsed.Ok) << Parsed.Error << " in: " << Line;
  return Parsed.V;
}

bool responseOk(const json::Value &Response) {
  const json::Value *Ok = Response.get("ok");
  return Ok && Ok->asBool();
}

std::string errorCode(const json::Value &Response) {
  const json::Value *Error = Response.get("error");
  if (!Error || !Error->isObject())
    return "";
  const json::Value *Code = Error->get("code");
  return Code ? Code->asString() : "";
}

//===----------------------------------------------------------------------===//
// Hash ring
//===----------------------------------------------------------------------===//

TEST(HashRingTest, DistributesAndStaysSticky) {
  std::vector<std::string> Addresses = {"unix:/tmp/a.sock", "unix:/tmp/b.sock",
                                        "unix:/tmp/c.sock", "unix:/tmp/d.sock"};
  HashRing Ring;
  Ring.build(Addresses, 64);
  EXPECT_EQ(Ring.numShards(), 4u);

  std::vector<char> Alive(4, 1);
  std::map<int, unsigned> Load;
  for (uint64_t Key = 0; Key < 4000; ++Key) {
    uint64_t Hashed = fingerprintString(formatString("key-%llu", (unsigned long long)Key));
    int Shard = Ring.pick(Hashed, Alive);
    ASSERT_GE(Shard, 0);
    ASSERT_LT(Shard, 4);
    EXPECT_EQ(Shard, Ring.pick(Hashed, Alive)) << "pick must be stable";
    ++Load[Shard];
  }
  // Virtual nodes smooth the split: every shard carries real load (the
  // exact split depends on the hash, but no shard may starve or hog).
  for (int Shard = 0; Shard < 4; ++Shard) {
    EXPECT_GT(Load[Shard], 4000u / 16) << "shard " << Shard << " starved";
    EXPECT_LT(Load[Shard], 4000u / 2) << "shard " << Shard << " hogs";
  }
}

TEST(HashRingTest, DeadShardMovesOnlyItsOwnKeys) {
  std::vector<std::string> Addresses = {"unix:/tmp/a.sock", "unix:/tmp/b.sock",
                                        "unix:/tmp/c.sock", "unix:/tmp/d.sock"};
  HashRing Ring;
  Ring.build(Addresses, 64);

  std::vector<char> AllUp(4, 1);
  std::vector<char> TwoDown(4, 1);
  TwoDown[2] = 0;
  for (uint64_t Key = 0; Key < 2000; ++Key) {
    uint64_t Hashed = fingerprintString(formatString("key-%llu", (unsigned long long)Key));
    int Before = Ring.pick(Hashed, AllUp);
    int After = Ring.pick(Hashed, TwoDown);
    ASSERT_NE(After, 2) << "dead shard must never be picked";
    if (Before != 2) {
      EXPECT_EQ(After, Before)
          << "keys of live shards must not move when another shard dies";
    }
  }

  std::vector<char> NoneUp(4, 0);
  EXPECT_EQ(Ring.pick(123, NoneUp), -1);
}

TEST(HashRingTest, MappingSurvivesAddressListReordering) {
  // Ring points hash the shard *address*, so reordering the --shard list
  // (a restart with shuffled flags) moves no keys.
  std::vector<std::string> Order1 = {"unix:/tmp/a.sock", "unix:/tmp/b.sock",
                                     "unix:/tmp/c.sock"};
  std::vector<std::string> Order2 = {"unix:/tmp/c.sock", "unix:/tmp/a.sock",
                                     "unix:/tmp/b.sock"};
  HashRing Ring1, Ring2;
  Ring1.build(Order1, 64);
  Ring2.build(Order2, 64);
  std::vector<char> Alive(3, 1);
  for (uint64_t Key = 0; Key < 1000; ++Key) {
    uint64_t Hashed = fingerprintString(formatString("key-%llu", (unsigned long long)Key));
    int Pick1 = Ring1.pick(Hashed, Alive);
    int Pick2 = Ring2.pick(Hashed, Alive);
    ASSERT_GE(Pick1, 0);
    ASSERT_GE(Pick2, 0);
    EXPECT_EQ(Order1[static_cast<size_t>(Pick1)],
              Order2[static_cast<size_t>(Pick2)]);
  }
}

TEST(ShardRouterTest, ShardKeyTracksCircuitAndBackend) {
  Request Req;
  Req.TheOp = Op::Route;
  Req.Route.Qasm = sampleQasm();
  Req.Route.Backend = "aspen16";
  uint64_t Base = shardKeyForRequest(Req);
  EXPECT_EQ(Base, shardKeyForRequest(Req)) << "key must be deterministic";

  Request OtherCircuit = Req;
  OtherCircuit.Route.Qasm = sampleQasm(3);
  EXPECT_NE(shardKeyForRequest(OtherCircuit), Base);

  Request OtherBackend = Req;
  OtherBackend.Route.Backend = "sherbrooke";
  EXPECT_NE(shardKeyForRequest(OtherBackend), Base);

  // The mapper is deliberately *not* part of the key: the same circuit
  // routed by two mappers shares its shard (and its context cache).
  Request OtherMapper = Req;
  OtherMapper.Route.Mapper = "sabre";
  EXPECT_EQ(shardKeyForRequest(OtherMapper), Base);

  // Batch requests fold every item's circuit into the key.
  Request Batch;
  Batch.TheOp = Op::Batch;
  Batch.Route.Backend = "aspen16";
  Batch.Items.resize(2);
  Batch.Items[0].Qasm = sampleQasm(1);
  Batch.Items[1].Qasm = sampleQasm(2);
  uint64_t BatchKey = shardKeyForRequest(Batch);
  Request Reordered = Batch;
  std::swap(Reordered.Items[0], Reordered.Items[1]);
  EXPECT_NE(shardKeyForRequest(Reordered), BatchKey)
      << "item order participates in the key (any stable rule works, "
         "but it must be deterministic)";
}

//===----------------------------------------------------------------------===//
// Metrics walker and stats merge
//===----------------------------------------------------------------------===//

TEST(MetricsTest, WalkerEmitsEveryNumericLeaf) {
  json::Value Doc = json::Value::object();
  json::Value Inner = json::Value::object();
  Inner.set("requests", 41);
  Inner.set("verified", true);
  Inner.set("endpoint", "unix:/tmp/x.sock"); // string: skipped
  Doc.set("server", Inner);
  Doc.set("uptime_seconds", 1.5);

  std::string Text;
  appendPrometheusText(Text, Doc, "qlosure");
  EXPECT_NE(Text.find("qlosure_server_requests 41"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("qlosure_server_verified 1"), std::string::npos)
      << Text;
  EXPECT_NE(Text.find("qlosure_uptime_seconds 1.5"), std::string::npos)
      << Text;
  EXPECT_EQ(Text.find("endpoint"), std::string::npos)
      << "strings are not samples: " << Text;
  EXPECT_NE(Text.find("# TYPE qlosure_server_requests gauge"),
            std::string::npos)
      << Text;

  // Labels are emitted verbatim inside {...}.
  std::string Labeled;
  appendPrometheusText(Labeled, json::Value(true), "qlosure_shard_up",
                       "shard=\"0\",address=\"unix:/tmp/a.sock\"");
  EXPECT_NE(
      Labeled.find(
          "qlosure_shard_up{shard=\"0\",address=\"unix:/tmp/a.sock\"} 1"),
      std::string::npos)
      << Labeled;
}

TEST(MetricsTest, MergeStatsDocsSumsNumericLeaves) {
  json::Value A = json::Value::object();
  {
    json::Value Server = json::Value::object();
    Server.set("requests", 10);
    Server.set("protocol", 2);
    Server.set("endpoint", "unix:/tmp/a.sock");
    A.set("server", Server);
    A.set("only_in_a", 7);
  }
  json::Value B = json::Value::object();
  {
    json::Value Server = json::Value::object();
    Server.set("requests", 32);
    Server.set("protocol", 2);
    Server.set("endpoint", "unix:/tmp/b.sock");
    B.set("server", Server);
    B.set("only_in_b", true);
  }

  json::Value Merged = mergeStatsDocs({A, B});
  EXPECT_EQ(Merged.get("server")->get("requests")->asNumber(), 42);
  // Strings identify rather than count: first document wins.
  EXPECT_EQ(Merged.get("server")->get("endpoint")->asString(),
            "unix:/tmp/a.sock");
  // Members present in only some documents survive.
  EXPECT_EQ(Merged.get("only_in_a")->asNumber(), 7);
  EXPECT_EQ(Merged.get("only_in_b")->asNumber(), 1) << "bools sum as 0/1";
}

//===----------------------------------------------------------------------===//
// Two-daemon fleet integration
//===----------------------------------------------------------------------===//

/// Boots \p N daemons on fresh unix sockets and a RouterServer sharding
/// across them; tears everything down on scope exit.
struct FleetFixture {
  std::vector<std::unique_ptr<Server>> Shards;
  std::vector<std::thread> ShardWaiters;
  std::unique_ptr<RouterServer> Router;
  std::thread RouterWaiter;
  RouterOptions RouterOpts;

  explicit FleetFixture(size_t N, ServerOptions ShardTemplate = {},
                        RouterOptions RouterTemplate = {}) {
    for (size_t S = 0; S < N; ++S) {
      ServerOptions Opts = ShardTemplate;
      Opts.Listen = tempSocketPath();
      if (Opts.Workers == 0)
        Opts.Workers = 2;
      Opts.DefaultTimeoutSeconds = 30;
      Shards.push_back(std::make_unique<Server>(Opts));
      Status Started = Shards.back()->start();
      EXPECT_TRUE(Started.ok()) << Started.message();
      ShardWaiters.emplace_back(
          [Daemon = Shards.back().get()] { Daemon->wait(); });
      RouterTemplate.Shards.push_back(Shards.back()->boundAddress());
    }
    RouterTemplate.Listen = tempSocketPath();
    if (RouterTemplate.HealthIntervalMs == 500)
      RouterTemplate.HealthIntervalMs = 100; // Fast health for tests.
    RouterOpts = RouterTemplate;
    Router = std::make_unique<RouterServer>(RouterOpts);
    Status Started = Router->start();
    EXPECT_TRUE(Started.ok()) << Started.message();
    RouterWaiter = std::thread([this] { Router->wait(); });
  }

  ~FleetFixture() {
    Router->requestStop();
    if (RouterWaiter.joinable())
      RouterWaiter.join();
    for (size_t S = 0; S < Shards.size(); ++S) {
      Shards[S]->requestStop();
      if (ShardWaiters[S].joinable())
        ShardWaiters[S].join();
    }
  }

  Client connect() {
    Client Conn;
    Status S = Conn.connect(Router->boundAddress(), 5.0);
    EXPECT_TRUE(S.ok()) << S.message();
    return Conn;
  }

  /// The shard the router's ring assigns to \p Req (same deterministic
  /// mapping: same addresses, same virtual-node count).
  size_t owningShard(const Request &Req) const {
    HashRing Ring;
    Ring.build(RouterOpts.Shards,
               RouterOpts.VirtualNodes ? RouterOpts.VirtualNodes : 1);
    std::vector<char> Alive(RouterOpts.Shards.size(), 1);
    int Shard = Ring.pick(shardKeyForRequest(Req), Alive);
    EXPECT_GE(Shard, 0);
    return static_cast<size_t>(Shard);
  }
};

TEST(ShardRouterTest, RoutesByteIdenticallyAndSticksToOneShard) {
  FleetFixture Fleet(2);
  Client Conn = Fleet.connect();

  std::string Response;
  ASSERT_TRUE(Conn.request("{\"op\":\"ping\"}", Response).ok());
  EXPECT_TRUE(responseOk(parseResponse(Response))) << Response;

  // Route several distinct circuits through the router; each must be
  // byte-identical to what its owning shard returns directly.
  for (unsigned Variant = 0; Variant < 4; ++Variant) {
    std::string Qasm = sampleQasm(Variant);
    std::string ViaRouter;
    ASSERT_TRUE(Conn.request(routeRequest(Qasm).dump(), ViaRouter).ok());
    json::Value RouterDoc = parseResponse(ViaRouter);
    ASSERT_TRUE(responseOk(RouterDoc)) << ViaRouter;

    Request Req;
    Req.TheOp = Op::Route;
    Req.Route.Qasm = Qasm;
    Req.Route.Backend = "aspen16";
    size_t Owner = Fleet.owningShard(Req);
    Client Direct;
    ASSERT_TRUE(
        Direct.connect(Fleet.Shards[Owner]->boundAddress(), 5.0).ok());
    std::string ViaShard;
    ASSERT_TRUE(Direct.request(routeRequest(Qasm).dump(), ViaShard).ok());
    json::Value ShardDoc = parseResponse(ViaShard);
    ASSERT_TRUE(responseOk(ShardDoc)) << ViaShard;

    EXPECT_EQ(RouterDoc.get("qasm")->asString(),
              ShardDoc.get("qasm")->asString())
        << "routed program must be byte-identical through the router";
    // The direct repeat hit the shard's result cache — proof the
    // router's request landed on this very shard and warmed it.
    EXPECT_TRUE(ShardDoc.get("result_cache_hit")->asBool())
        << "router must have routed variant " << Variant
        << " to its ring-assigned shard";
  }

  // Stickiness as the client sees it: repeating a circuit through the
  // router hits the owning shard's cache.
  std::string First, Second;
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm(9)).dump(), First).ok());
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm(9)).dump(), Second).ok());
  ASSERT_TRUE(responseOk(parseResponse(First))) << First;
  json::Value SecondDoc = parseResponse(Second);
  ASSERT_TRUE(responseOk(SecondDoc)) << Second;
  EXPECT_TRUE(SecondDoc.get("result_cache_hit")->asBool());
  EXPECT_EQ(parseResponse(First).get("qasm")->asString(),
            SecondDoc.get("qasm")->asString());
}

TEST(ShardRouterTest, StatsAggregateAndMetricsCoverEveryCounter) {
  FleetFixture Fleet(2);
  Client Conn = Fleet.connect();

  // Seed some traffic so counters are non-trivial, spread over shards.
  std::string Response;
  for (unsigned Variant = 0; Variant < 4; ++Variant)
    ASSERT_TRUE(
        Conn.request(routeRequest(sampleQasm(Variant)).dump(), Response)
            .ok());

  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", Response).ok());
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;

  const json::Value *RouterSec = Doc.get("router");
  ASSERT_NE(RouterSec, nullptr) << Response;
  EXPECT_EQ(RouterSec->get("shards_total")->asNumber(), 2);
  EXPECT_EQ(RouterSec->get("shards_up")->asNumber(), 2);
  EXPECT_GE(RouterSec->get("forwarded")->asNumber(), 4);

  // The aggregate sums both shards' stats documents: every route the
  // router forwarded is accounted for across the fleet.
  const json::Value *Aggregate = Doc.get("aggregate");
  ASSERT_NE(Aggregate, nullptr) << Response;
  EXPECT_EQ(Aggregate->get("server")->get("route_requests")->asNumber(), 4);

  const json::Value *PerShard = Doc.get("shards");
  ASSERT_NE(PerShard, nullptr);
  ASSERT_EQ(PerShard->items().size(), 2u);

  // /metrics (the protocol op variant) renders the same aggregate as
  // Prometheus text. Acceptance by construction: every numeric counter
  // in the aggregate stats document must appear as a metric.
  ASSERT_TRUE(Conn.request("{\"op\":\"metrics\"}", Response).ok());
  json::Value MetricsDoc = parseResponse(Response);
  ASSERT_TRUE(responseOk(MetricsDoc)) << Response;
  const json::Value *Body = MetricsDoc.get("body");
  ASSERT_NE(Body, nullptr) << Response;
  const std::string &Text = Body->asString();
  EXPECT_NE(Text.find("# TYPE"), std::string::npos);
  EXPECT_NE(Text.find("qlosure_shard_up{"), std::string::npos) << Text;
  EXPECT_NE(Text.find("qlosure_router_forwarded"), std::string::npos)
      << Text;

  std::function<void(const json::Value &, const std::string &)> CheckLeaves =
      [&](const json::Value &Node, const std::string &Path) {
        if (isHistogramJson(Node)) {
          // Histogram leaves render as one typed family, not as walked
          // members: _bucket / _sum / _count carry the data.
          std::string Name = "qlosure_aggregate_" + Path;
          EXPECT_NE(Text.find(Name + "_bucket{"), std::string::npos)
              << "histogram missing from /metrics: " << Name;
          EXPECT_NE(Text.find(Name + "_sum"), std::string::npos) << Name;
          EXPECT_NE(Text.find(Name + "_count"), std::string::npos) << Name;
          return;
        }
        if (Node.isObject()) {
          for (const auto &Member : Node.members())
            CheckLeaves(Member.second,
                        Path.empty() ? Member.first
                                     : Path + "_" + Member.first);
          return;
        }
        if (!Node.isNumber() && !Node.isBool())
          return;
        std::string Name = "qlosure_aggregate_" + Path;
        for (char &C : Name)
          if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_')
            C = '_';
        EXPECT_NE(Text.find(Name), std::string::npos)
            << "aggregate counter missing from /metrics: " << Name;
      };
  CheckLeaves(*Aggregate, "");

  // The router's own forward-latency histogram is always on.
  const json::Value *Forward =
      RouterSec->get("latency") ? RouterSec->get("latency")->get("forward")
                                : nullptr;
  ASSERT_NE(Forward, nullptr) << Response;
  ASSERT_TRUE(isHistogramJson(*Forward));
}

TEST(ShardRouterTest, TracedRouteMergesRouterAndDaemonSpans) {
  FleetFixture Fleet(2);
  Client Conn = Fleet.connect();

  json::Value Req = routeRequest(sampleQasm());
  Req.set("id", "r1");
  Req.set("trace", true);
  const auto Before = std::chrono::steady_clock::now();
  std::string Response;
  ASSERT_TRUE(Conn.request(Req.dump(), Response).ok());
  const double WallUs = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - Before)
                            .count();
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;

  const json::Value *TraceObj = Doc.get("trace");
  ASSERT_NE(TraceObj, nullptr) << Response;
  // No trace_id was supplied: the router minted one and it survived the
  // round trip through the shard.
  const std::string TraceId = TraceObj->get("trace_id")->asString();
  EXPECT_EQ(TraceId.size(), 16u) << Response;

  const json::Value *Spans = TraceObj->get("spans");
  ASSERT_NE(Spans, nullptr);
  std::set<std::string> DepthZero;
  double DepthZeroSumUs = 0;
  double UpstreamStartUs = -1, UpstreamDurUs = -1;
  bool SawNestedDaemonSpan = false;
  for (const json::Value &S : Spans->items()) {
    const std::string Name = S.get("name")->asString();
    const double Depth = S.get("depth")->asNumber();
    if (Depth == 0) {
      DepthZero.insert(Name);
      DepthZeroSumUs += S.get("dur_us")->asNumber();
    }
    if (Name == "upstream_wait") {
      UpstreamStartUs = S.get("start_us")->asNumber();
      UpstreamDurUs = S.get("dur_us")->asNumber();
    }
    // The daemon's phase spans nest one level below the router's.
    if (Name == "routing_loop" || Name == "context_build") {
      EXPECT_GE(Depth, 1) << Response;
      SawNestedDaemonSpan = true;
      EXPECT_GE(S.get("start_us")->asNumber(), UpstreamStartUs) << Response;
    }
  }
  EXPECT_TRUE(DepthZero.count("ring_lookup")) << Response;
  ASSERT_TRUE(DepthZero.count("upstream_wait")) << Response;
  EXPECT_TRUE(SawNestedDaemonSpan) << Response;
  EXPECT_GT(UpstreamDurUs, 0) << Response;
  // Router depth-0 spans are sequential: they cannot exceed the
  // client-observed wall clock.
  EXPECT_LE(DepthZeroSumUs, WallUs) << Response;

  // A client-supplied trace_id passes through both tiers untouched.
  json::Value Custom = routeRequest(sampleQasm(1));
  Custom.set("id", "r2");
  Custom.set("trace", true);
  Custom.set("trace_id", "client-chose-this");
  ASSERT_TRUE(Conn.request(Custom.dump(), Response).ok());
  json::Value Doc2 = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc2)) << Response;
  EXPECT_EQ(Doc2.get("trace")->get("trace_id")->asString(),
            "client-chose-this");
}

TEST(ShardRouterTest, QueueFullRetriesBehindTheScenes) {
  // One shard, one worker, a one-slot queue: while a deep route holds
  // the worker and a second request holds the queue slot, every further
  // request is rejected `queue_full` upstream — and the router must park
  // and retry it instead of surfacing the rejection.
  ServerOptions ShardTemplate;
  ShardTemplate.Workers = 1;
  ShardTemplate.QueueCapacity = 1;
  RouterOptions RouterTemplate;
  RouterTemplate.MaxRetries = 60; // Ample backoff budget for slow CI.
  FleetFixture Fleet(1, ShardTemplate, RouterTemplate);
  Client Conn = Fleet.connect();

  // A deliberately slow route (deep QUEKO under qmap) with pipelined
  // cheap routes behind it. Every request carries an id so the retry
  // path (id-tracked parking) is exercised.
  CouplingGraph Gen = makeKings9x9();
  QuekoSpec Spec;
  Spec.Depth = 200;
  Spec.Seed = 3;
  json::Value Slow =
      routeRequest(qasm::printQasm(generateQueko(Gen, Spec).Circ), "qmap",
                   "sherbrooke2x");
  Slow.set("id", "slow");
  Slow.set("include_qasm", false);
  ASSERT_TRUE(Conn.sendLine(Slow.dump()).ok());

  const unsigned Pipelined = 4;
  for (unsigned I = 0; I < Pipelined; ++I) {
    json::Value Quick = routeRequest(sampleQasm(I));
    Quick.set("id", formatString("q%u", I));
    ASSERT_TRUE(Conn.sendLine(Quick.dump()).ok());
  }

  // Every request completes successfully despite the rejections.
  ASSERT_TRUE(Conn.setIoTimeout(120.0).ok());
  std::string Response;
  for (unsigned I = 0; I < Pipelined; ++I) {
    ASSERT_TRUE(
        Conn.recvResponseFor(formatString("q%u", I), Response).ok());
    EXPECT_TRUE(responseOk(parseResponse(Response)))
        << "q" << I << ": " << Response;
  }
  ASSERT_TRUE(Conn.recvResponseFor("slow", Response).ok());
  EXPECT_TRUE(responseOk(parseResponse(Response))) << Response;

  // The router's own counters prove the backpressure path ran.
  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", Response).ok());
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;
  EXPECT_GE(Doc.get("router")->get("retries")->asNumber(), 1)
      << "queue_full must have been retried, not surfaced: " << Response;
}

TEST(ShardRouterTest, ServesDegradedAfterShardDeath) {
  FleetFixture Fleet(2);
  Client Conn = Fleet.connect();

  // Warm both shards, then kill shard 1.
  std::string Response;
  for (unsigned Variant = 0; Variant < 4; ++Variant)
    ASSERT_TRUE(
        Conn.request(routeRequest(sampleQasm(Variant)).dump(), Response)
            .ok());
  Fleet.Shards[1]->stop();

  // The health monitor notices within a few intervals.
  for (int Spin = 0; Spin < 100; ++Spin) {
    std::vector<char> Health = Fleet.Router->shardHealth();
    if (!Health[1])
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_FALSE(Fleet.Router->shardHealth()[1])
      << "health monitor must mark the dead shard down";

  // Every circuit — including those owned by the dead shard — still
  // routes: dead-shard keys spill to the ring successor.
  for (unsigned Variant = 0; Variant < 4; ++Variant) {
    ASSERT_TRUE(
        Conn.request(routeRequest(sampleQasm(Variant)).dump(), Response)
            .ok());
    EXPECT_TRUE(responseOk(parseResponse(Response)))
        << "variant " << Variant << " must survive shard death: "
        << Response;
  }

  // Stats degrade gracefully: one shard up, aggregate still served.
  ASSERT_TRUE(Conn.request("{\"op\":\"stats\"}", Response).ok());
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;
  EXPECT_EQ(Doc.get("router")->get("shards_up")->asNumber(), 1);
  ASSERT_EQ(Doc.get("shards")->items().size(), 2u);
  EXPECT_FALSE(Doc.get("shards")->items()[1].get("up")->asBool());

  // With *no* shard left, requests answer `unavailable` instead of
  // hanging.
  Fleet.Shards[0]->stop();
  for (int Spin = 0; Spin < 100 && Fleet.Router->shardHealth()[0]; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(
      Conn.request(routeRequest(sampleQasm(50)).dump(), Response).ok());
  json::Value Fail = parseResponse(Response);
  EXPECT_FALSE(responseOk(Fail));
  EXPECT_EQ(errorCode(Fail), errc::Unavailable) << Response;
}

TEST(ShardRouterTest, CancelOfUnknownIdAcksLocally) {
  FleetFixture Fleet(1);
  Client Conn = Fleet.connect();

  std::string Response;
  ASSERT_TRUE(
      Conn.request("{\"op\":\"cancel\",\"id\":\"ghost\"}", Response).ok());
  json::Value Doc = parseResponse(Response);
  ASSERT_TRUE(responseOk(Doc)) << Response;
  EXPECT_FALSE(Doc.get("cancelled")->asBool()) << Response;
  EXPECT_EQ(Doc.get("id")->asString(), "ghost");
}

} // namespace
