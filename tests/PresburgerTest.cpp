//===- tests/PresburgerTest.cpp - presburger substrate tests --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "presburger/AffineExpr.h"
#include "presburger/BasicSet.h"
#include "presburger/Counting.h"
#include "presburger/IntegerMap.h"
#include "presburger/IntegerSet.h"
#include "presburger/TransitiveClosure.h"

#include <gtest/gtest.h>

#include <set>

using namespace qlosure;
using namespace qlosure::presburger;

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

TEST(AffineExprTest, EvaluateLinear) {
  // 2*x0 - x1 + 3.
  AffineExpr E({2, -1}, 3);
  EXPECT_EQ(E.evaluate({5, 4}), 9);
  EXPECT_EQ(E.evaluate({0, 0}), 3);
}

TEST(AffineExprTest, ArithmeticOperators) {
  AffineExpr A({1, 0}, 1);
  AffineExpr B({0, 2}, -1);
  AffineExpr Sum = A + B;
  EXPECT_EQ(Sum.evaluate({3, 4}), 3 + 1 + 8 - 1);
  AffineExpr Diff = A - B;
  EXPECT_EQ(Diff.evaluate({3, 4}), (3 + 1) - (8 - 1));
  AffineExpr Scaled = A * 3;
  EXPECT_EQ(Scaled.evaluate({2, 0}), 9);
}

TEST(AffineExprTest, Substitute) {
  // x0 + 2*x1, substitute x1 := x0 + 1 -> 3*x0 + 2.
  AffineExpr E({1, 2}, 0);
  AffineExpr Repl({1, 0}, 1);
  AffineExpr Result = E.substitute(1, Repl);
  EXPECT_EQ(Result.evaluate({4, 999}), 14);
}

TEST(AffineExprTest, RemapVars) {
  AffineExpr E({3, 5}, 1);
  AffineExpr Remapped = E.remapVars({2, 0}, 3);
  EXPECT_EQ(Remapped.evaluate({5, 0, 3}), 3 * 3 + 5 * 5 + 1);
}

TEST(AffineExprTest, NormalizeGcd) {
  AffineExpr E({4, -6}, 8);
  EXPECT_EQ(E.normalizeGcd(), 2);
  EXPECT_EQ(E.coefficient(0), 2);
  EXPECT_EQ(E.coefficient(1), -3);
  EXPECT_EQ(E.constantTerm(), 4);
}

TEST(AffineExprTest, Predicates) {
  EXPECT_TRUE(AffineExpr::constant(2, 5).isConstant());
  EXPECT_TRUE(AffineExpr::variable(2, 1).isUnitVariable());
  EXPECT_FALSE(AffineExpr({2, 0}, 0).isUnitVariable());
  EXPECT_FALSE(AffineExpr({1, 1}, 0).isUnitVariable());
}

TEST(AffineExprTest, ToStringReadable) {
  AffineExpr E({2, -1}, 3);
  EXPECT_EQ(E.toString(), "2*x0 - x1 + 3");
  EXPECT_EQ(AffineExpr::constant(2, -7).toString(), "-7");
}

//===----------------------------------------------------------------------===//
// BasicSet
//===----------------------------------------------------------------------===//

TEST(BasicSetTest, BoxMembership) {
  BasicSet S(2);
  S.addBounds(0, 0, 3);
  S.addBounds(1, -1, 1);
  EXPECT_TRUE(S.contains({0, 0}));
  EXPECT_TRUE(S.contains({3, -1}));
  EXPECT_FALSE(S.contains({4, 0}));
  EXPECT_FALSE(S.contains({0, 2}));
}

TEST(BasicSetTest, EnumerateBox) {
  BasicSet S(2);
  S.addBounds(0, 0, 2);
  S.addBounds(1, 0, 1);
  auto Points = S.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 6u);
}

TEST(BasicSetTest, EnumerateWithDiagonalConstraint) {
  // { (x, y) : 0 <= x, y <= 4, x + y <= 3 } has 10 points.
  BasicSet S(2);
  S.addBounds(0, 0, 4);
  S.addBounds(1, 0, 4);
  S.addConstraint(makeLe(AffineExpr({1, 1}, 0), AffineExpr::constant(2, 3)));
  auto Points = S.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 10u);
}

TEST(BasicSetTest, UnboundedEnumerationFails) {
  BasicSet S(1);
  S.addConstraint(makeGe(AffineExpr::variable(1, 0),
                         AffineExpr::constant(1, 0)));
  EXPECT_FALSE(S.enumeratePoints().has_value());
}

TEST(BasicSetTest, BoundsForVar) {
  BasicSet S(2);
  S.addBounds(0, 2, 9);
  // x1 == x0 + 1 -> bounds of x1 are [3, 10].
  S.addConstraint(makeEqExpr(AffineExpr::variable(2, 1),
                             AffineExpr::variable(2, 0) +
                                 AffineExpr::constant(2, 1)));
  VarBounds B = S.boundsForVar(1);
  EXPECT_TRUE(B.HasLower);
  EXPECT_TRUE(B.HasUpper);
  EXPECT_EQ(B.Lower, 3);
  EXPECT_EQ(B.Upper, 10);
}

TEST(BasicSetTest, EmptyByParity) {
  // 2*x == 1 has no integer solutions.
  BasicSet S(1);
  S.addConstraint(makeEq(AffineExpr({2}, -1)));
  S.addBounds(0, -10, 10);
  EXPECT_TRUE(S.isEmpty());
}

TEST(BasicSetTest, SimplifyDetectsContradiction) {
  BasicSet S(1);
  S.addConstraint(makeGe(AffineExpr::constant(1, -1),
                         AffineExpr::constant(1, 0)));
  EXPECT_TRUE(S.isTriviallyEmpty());
}

TEST(BasicSetTest, SimplifyTightensGcd) {
  // 2*x >= 1 over integers means x >= 1.
  BasicSet S(1);
  S.addConstraint(makeGe(AffineExpr({2}, 0), AffineExpr::constant(1, 1)));
  S.addBounds(0, -5, 5);
  EXPECT_FALSE(S.contains({0}));
  EXPECT_TRUE(S.contains({1}));
  auto Points = S.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 5u); // 1..5.
}

TEST(BasicSetTest, IntersectConjoins) {
  BasicSet A(1), B(1);
  A.addBounds(0, 0, 10);
  B.addBounds(0, 5, 20);
  BasicSet I = A.intersect(B);
  auto Points = I.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 6u); // 5..10.
}

TEST(BasicSetTest, ProjectOutTrailing) {
  // { (x, y) : 0 <= x <= 2, y == x + 5 } projected on x is [0, 2].
  BasicSet S(2);
  S.addBounds(0, 0, 2);
  S.addConstraint(makeEqExpr(AffineExpr::variable(2, 1),
                             AffineExpr::variable(2, 0) +
                                 AffineExpr::constant(2, 5)));
  BasicSet P = S.projectOutTrailing(1);
  EXPECT_EQ(P.numDims(), 1u);
  EXPECT_TRUE(P.contains({0}));
  EXPECT_TRUE(P.contains({2}));
  EXPECT_FALSE(P.contains({3}));
}

TEST(BasicSetTest, ExistentialStride) {
  // { x : exists e . x == 3*e, 0 <= x <= 10 } = {0, 3, 6, 9}.
  BasicSet S(1, 1);
  S.addConstraint(makeEqExpr(AffineExpr::variable(2, 0),
                             AffineExpr::variable(2, 1) * 3));
  S.addConstraint(makeGe(AffineExpr::variable(2, 0),
                         AffineExpr::constant(2, 0)));
  S.addConstraint(makeLe(AffineExpr::variable(2, 0),
                         AffineExpr::constant(2, 10)));
  EXPECT_TRUE(S.contains({0}));
  EXPECT_TRUE(S.contains({9}));
  EXPECT_FALSE(S.contains({5}));
  auto Points = S.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 4u);
}

TEST(BasicSetTest, FixAndRemoveDim) {
  BasicSet S(2);
  S.addBounds(0, 0, 5);
  S.addBounds(1, 0, 5);
  S.addConstraint(makeEqExpr(AffineExpr::variable(2, 0) +
                                 AffineExpr::variable(2, 1),
                             AffineExpr::constant(2, 4)));
  BasicSet F = S.fixAndRemoveDim(0, 1);
  EXPECT_EQ(F.numDims(), 1u);
  EXPECT_TRUE(F.contains({3}));
  EXPECT_FALSE(F.contains({4}));
}

TEST(BasicSetTest, PermuteDims) {
  BasicSet S(2);
  S.addBounds(0, 0, 1);
  S.addBounds(1, 5, 6);
  BasicSet P = S.permuteDims({1, 0});
  EXPECT_TRUE(P.contains({5, 0}));
  EXPECT_FALSE(P.contains({0, 5}));
}

//===----------------------------------------------------------------------===//
// Fourier-Motzkin elimination
//===----------------------------------------------------------------------===//

TEST(FourierMotzkinTest, EliminatesMiddleVariable) {
  // x <= m, m <= y  =>  x <= y after eliminating m.
  std::vector<Constraint> Cs;
  Cs.push_back(makeGe(AffineExpr::variable(3, 1),
                      AffineExpr::variable(3, 0))); // m >= x
  Cs.push_back(makeGe(AffineExpr::variable(3, 2),
                      AffineExpr::variable(3, 1))); // y >= m
  auto Out = fourierMotzkinEliminate(Cs, 1, 3);
  ASSERT_EQ(Out.size(), 1u);
  // y - x >= 0.
  EXPECT_EQ(Out[0].Expr.coefficient(0), -1);
  EXPECT_EQ(Out[0].Expr.coefficient(2), 1);
}

TEST(FourierMotzkinTest, UnitEqualitySubstitutesExactly) {
  // m == x + 2 and m <= 7 => x <= 5.
  std::vector<Constraint> Cs;
  Cs.push_back(makeEqExpr(AffineExpr::variable(2, 1),
                          AffineExpr::variable(2, 0) +
                              AffineExpr::constant(2, 2)));
  Cs.push_back(makeLe(AffineExpr::variable(2, 1),
                      AffineExpr::constant(2, 7)));
  auto Out = fourierMotzkinEliminate(Cs, 1, 2);
  ASSERT_EQ(Out.size(), 1u);
  // The variable space keeps its width; the eliminated coefficient is 0.
  EXPECT_EQ(Out[0].Expr.coefficient(1), 0);
  EXPECT_TRUE(Out[0].isSatisfied({5, 0}));
  EXPECT_FALSE(Out[0].isSatisfied({6, 0}));
}

//===----------------------------------------------------------------------===//
// IntegerSet
//===----------------------------------------------------------------------===//

TEST(IntegerSetTest, UnionMembership) {
  IntegerSet A = IntegerSet::box({{0, 2}});
  IntegerSet B = IntegerSet::box({{10, 12}});
  IntegerSet U = A.unionWith(B);
  EXPECT_TRUE(U.contains({1}));
  EXPECT_TRUE(U.contains({11}));
  EXPECT_FALSE(U.contains({5}));
}

TEST(IntegerSetTest, CardinalityDeduplicatesOverlap) {
  IntegerSet A = IntegerSet::box({{0, 5}});
  IntegerSet B = IntegerSet::box({{3, 8}});
  auto Card = A.unionWith(B).cardinality();
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 9); // 0..8.
}

TEST(IntegerSetTest, IntersectPieces) {
  IntegerSet A = IntegerSet::box({{0, 5}});
  IntegerSet B = IntegerSet::box({{4, 9}});
  auto Card = A.intersect(B).cardinality();
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 2); // 4, 5.
}

TEST(IntegerSetTest, EmptyDetection) {
  IntegerSet A = IntegerSet::box({{0, 3}});
  IntegerSet B = IntegerSet::box({{5, 9}});
  EXPECT_TRUE(A.intersect(B).isEmpty());
  EXPECT_FALSE(A.isEmpty());
}

//===----------------------------------------------------------------------===//
// IntegerMap / BasicMap
//===----------------------------------------------------------------------===//

TEST(IntegerMapTest, TranslationImage) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 9);
  IntegerMap Shift(BasicMap::translation(Dom, {3}));
  auto Image = Shift.imageOfPoint({4});
  ASSERT_TRUE(Image.has_value());
  ASSERT_EQ(Image->size(), 1u);
  EXPECT_EQ((*Image)[0], Point{7});
  EXPECT_TRUE(Shift.contains({0}, {3}));
  EXPECT_FALSE(Shift.contains({10}, {13})); // 10 outside domain.
}

TEST(IntegerMapTest, DomainAndRange) {
  BasicSet Dom(1);
  Dom.addBounds(0, 2, 5);
  IntegerMap Shift(BasicMap::translation(Dom, {10}));
  auto DomPoints = Shift.domain().enumeratePoints();
  auto RanPoints = Shift.range().enumeratePoints();
  ASSERT_TRUE(DomPoints && RanPoints);
  EXPECT_EQ(DomPoints->size(), 4u);
  EXPECT_EQ(RanPoints->front(), Point{12});
  EXPECT_EQ(RanPoints->back(), Point{15});
}

TEST(IntegerMapTest, ReverseSwapsRoles) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 3);
  IntegerMap Shift(BasicMap::translation(Dom, {1}));
  IntegerMap Rev = Shift.reverse();
  EXPECT_TRUE(Rev.contains({1}, {0}));
  EXPECT_FALSE(Rev.contains({0}, {1}));
}

TEST(IntegerMapTest, ComposeTranslations) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 100);
  IntegerMap A(BasicMap::translation(Dom, {2}));
  IntegerMap B(BasicMap::translation(Dom, {5}));
  IntegerMap C = A.composeWith(B);
  EXPECT_TRUE(C.contains({1}, {8}));
  EXPECT_FALSE(C.contains({1}, {7}));
}

TEST(IntegerMapTest, SinglePairAndCardinality) {
  IntegerMap M(BasicMap::singlePair({1, 2}, {3, 4}));
  M.addPiece(BasicMap::singlePair({0, 0}, {1, 1}));
  auto Card = M.cardinality();
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 2);
  EXPECT_TRUE(M.contains({1, 2}, {3, 4}));
}

TEST(IntegerMapTest, AsTranslationDetects) {
  BasicSet Dom(2);
  Dom.addBounds(0, 0, 4);
  Dom.addBounds(1, 0, 4);
  BasicMap T = BasicMap::translation(Dom, {1, -2});
  auto Delta = T.asTranslation();
  ASSERT_TRUE(Delta.has_value());
  EXPECT_EQ(*Delta, (std::vector<int64_t>{1, -2}));
}

TEST(IntegerMapTest, AsTranslationRejectsScaling) {
  // { [i] -> [2i] } is not a translation.
  BasicSet Set(2);
  Set.addConstraint(makeEqExpr(AffineExpr::variable(2, 1),
                               AffineExpr::variable(2, 0) * 2));
  BasicMap M(1, 1, Set);
  EXPECT_FALSE(M.asTranslation().has_value());
}

TEST(IntegerMapTest, IdentityMap) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 5);
  BasicMap Id = BasicMap::identity(Dom);
  EXPECT_TRUE(Id.contains({3}, {3}));
  EXPECT_FALSE(Id.contains({3}, {4}));
}

//===----------------------------------------------------------------------===//
// Transitive closure
//===----------------------------------------------------------------------===//

TEST(ClosureTest, SingleTranslationExact) {
  // { i -> i+2 : 0 <= i <= 9 }: closure reaches i + 2k while in [0, 11]...
  // domain restricts starts to [0, 9] and each hop's source must be in
  // domain, so from 1 the closure gives {3, 5, 7, 9, 11}.
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 9);
  IntegerMap R(BasicMap::translation(Dom, {2}));
  ClosureOptions Opts;
  Opts.AllowFiniteFallback = false; // Force the symbolic tier.
  ClosureResult C = transitiveClosure(R, Opts);
  EXPECT_TRUE(C.IsExact);
  EXPECT_TRUE(C.Closure.contains({1}, {3}));
  EXPECT_TRUE(C.Closure.contains({1}, {11}));
  EXPECT_FALSE(C.Closure.contains({1}, {13}));
  EXPECT_FALSE(C.Closure.contains({1}, {4})); // Parity mismatch.
}

TEST(ClosureTest, SymbolicMatchesFiniteEnumeration) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 19);
  IntegerMap R(BasicMap::translation(Dom, {3}));
  ClosureOptions Symbolic;
  Symbolic.AllowFiniteFallback = false;
  ClosureResult CSym = transitiveClosure(R, Symbolic);
  // Brute force over the explicit relation.
  auto Pairs = R.enumeratePairs();
  ASSERT_TRUE(Pairs.has_value());
  std::set<std::pair<Point, Point>> Expect;
  for (auto [In, Out] : *Pairs) {
    // Walk the chain.
    Point Cur = Out;
    Expect.insert({In, Cur});
    while (Cur[0] + 3 <= 19 + 3 && Cur[0] <= 19) {
      Point Next{Cur[0] + 3};
      Expect.insert({In, Next});
      Cur = Next;
    }
  }
  for (const auto &[In, Out] : Expect)
    EXPECT_TRUE(CSym.Closure.contains(In, Out))
        << In[0] << " -> " << Out[0];
}

TEST(ClosureTest, FiniteFallbackExactOnSparseRelation) {
  IntegerMap R(BasicMap::singlePair({0}, {1}));
  R.addPiece(BasicMap::singlePair({1}, {5}));
  R.addPiece(BasicMap::singlePair({5}, {7}));
  ClosureResult C = transitiveClosure(R);
  EXPECT_TRUE(C.IsExact);
  EXPECT_TRUE(C.Closure.contains({0}, {1}));
  EXPECT_TRUE(C.Closure.contains({0}, {5}));
  EXPECT_TRUE(C.Closure.contains({0}, {7}));
  EXPECT_TRUE(C.Closure.contains({1}, {7}));
  EXPECT_FALSE(C.Closure.contains({5}, {1}));
}

TEST(ClosureTest, EmptyRelationClosureIsEmpty) {
  IntegerMap R(1, 1);
  ClosureResult C = transitiveClosure(R);
  EXPECT_TRUE(C.IsExact);
  EXPECT_TRUE(C.Closure.isEmptyUnion());
}

TEST(ClosureTest, OverApproximationIsSound) {
  // Two translation pieces with different strides; disable the finite
  // fallback to force the over-approximation tier, then check it covers
  // the true closure computed by enumeration.
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 11);
  IntegerMap R(BasicMap::translation(Dom, {2}));
  R.addPiece(BasicMap::translation(Dom, {3}));
  ClosureOptions NoFallback;
  NoFallback.AllowFiniteFallback = false;
  ClosureResult Approx = transitiveClosure(R, NoFallback);
  ClosureResult Exact = transitiveClosure(R); // Finite tier.
  ASSERT_TRUE(Exact.IsExact);
  auto ExactPairs = Exact.Closure.enumeratePairs();
  ASSERT_TRUE(ExactPairs.has_value());
  for (const auto &[In, Out] : *ExactPairs)
    EXPECT_TRUE(Approx.Closure.contains(In, Out))
        << In[0] << " -> " << Out[0];
}

//===----------------------------------------------------------------------===//
// Counting
//===----------------------------------------------------------------------===//

TEST(CountingTest, CountBox) {
  auto Card = countPoints(IntegerSet::box({{0, 4}, {0, 2}}));
  ASSERT_TRUE(Card.has_value());
  EXPECT_EQ(*Card, 15);
}

TEST(CountingTest, CountImageOfClosure) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 9);
  IntegerMap R(BasicMap::translation(Dom, {2}));
  ClosureOptions Opts;
  Opts.AllowFiniteFallback = false;
  ClosureResult C = transitiveClosure(R, Opts);
  auto N = countImage(C.Closure, {1});
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(*N, 5); // 3, 5, 7, 9, 11.
}

TEST(CountingTest, PiecewiseQuasiAffineEvaluate) {
  PiecewiseQuasiAffine F;
  F.addPiece({0, 7, 7, -1, 2}); // floor((7 - i)/2) on [0, 7].
  EXPECT_EQ(F.evaluate(0), 3);
  EXPECT_EQ(F.evaluate(1), 3);
  EXPECT_EQ(F.evaluate(7), 0);
  EXPECT_EQ(F.evaluate(8), 0); // Outside.
  EXPECT_EQ(F.sumOver(0, 7), 3 + 3 + 2 + 2 + 1 + 1 + 0 + 0);
}

class ClosureCount1DTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(ClosureCount1DTest, MatchesEnumeration) {
  auto [Lo, Hi, Stride] = GetParam();
  PiecewiseQuasiAffine F = closureImageCount1D(Lo, Hi, Stride);
  for (int64_t I = Lo; I <= Hi; ++I) {
    int64_t Expected = 0;
    for (int64_t L = 1;; ++L) {
      int64_t Target = I + L * Stride;
      if (Target < Lo || Target > Hi)
        break;
      ++Expected;
    }
    EXPECT_EQ(F.evaluate(I), Expected)
        << "Lo=" << Lo << " Hi=" << Hi << " s=" << Stride << " i=" << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, ClosureCount1DTest,
    ::testing::Values(std::make_tuple(0, 10, 1), std::make_tuple(0, 10, 2),
                      std::make_tuple(0, 10, 3), std::make_tuple(0, 10, 7),
                      std::make_tuple(0, 10, 11), std::make_tuple(-5, 5, 2),
                      std::make_tuple(0, 10, -1), std::make_tuple(0, 10, -3),
                      std::make_tuple(-4, 9, -2), std::make_tuple(3, 3, 1)));
