//===- tests/HarnessTest.cpp - evaluation harness tests ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"
#include "baselines/Sabre.h"
#include "core/Qlosure.h"
#include "eval/Harness.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

using namespace qlosure;

TEST(HarnessTest, RunOnceFillsRecord) {
  CouplingGraph Hw = makeAspen16();
  Circuit C = makeQft(8);
  QlosureRouter Router;
  RunRecord R = runOnce(Router, C, Hw, C.depth());
  EXPECT_EQ(R.Mapper, "Qlosure");
  EXPECT_EQ(R.Backend, "aspen16");
  EXPECT_EQ(R.Workload, "qft_n8");
  EXPECT_EQ(R.CircuitQubits, 8u);
  EXPECT_EQ(R.QuantumOps, C.size());
  EXPECT_GE(R.RoutedDepth, C.depth());
  EXPECT_TRUE(R.Verified);
  EXPECT_GE(R.depthFactor(), 1.0);
}

TEST(HarnessTest, QuekoSweepProducesAllRecords) {
  CouplingGraph Gen = makeAspen16();
  CouplingGraph Backend = makeGrid(4, 5);
  QlosureRouter A;
  SabreRouter B;
  QuekoSweepConfig Config;
  Config.Depths = {10, 15};
  Config.CircuitsPerDepth = 2;
  auto Records =
      runQuekoSweep(Gen, Backend, {&A, &B}, Config);
  EXPECT_EQ(Records.size(), 2u * 2u * 2u);
  for (const RunRecord &R : Records) {
    EXPECT_TRUE(R.Verified);
    EXPECT_GE(R.depthFactor(), 1.0);
  }
}

TEST(HarnessTest, DepthFactorSummaryMath) {
  std::vector<RunRecord> Records;
  auto add = [&Records](const char *Mapper, size_t Base, size_t Routed) {
    RunRecord R;
    R.Mapper = Mapper;
    R.Workload = "w" + std::to_string(Records.size());
    R.BaselineDepth = Base;
    R.RoutedDepth = Routed;
    Records.push_back(R);
  };
  add("A", 100, 200); // Medium, factor 2.
  add("A", 100, 400); // Medium, factor 4.
  add("A", 600, 1200); // Large, factor 2.
  auto Summary = depthFactorSummary(Records, 550);
  EXPECT_DOUBLE_EQ(Summary["A"].Medium, 3.0);
  EXPECT_DOUBLE_EQ(Summary["A"].Large, 2.0);
}

TEST(HarnessTest, SwapRatioPairsPerWorkload) {
  std::vector<RunRecord> Records;
  auto add = [&Records](const char *Mapper, const char *Workload,
                        size_t Swaps) {
    RunRecord R;
    R.Mapper = Mapper;
    R.Workload = Workload;
    R.Backend = "b";
    R.BaselineDepth = 100;
    R.Swaps = Swaps;
    Records.push_back(R);
  };
  add("Qlosure", "w1", 100);
  add("SABRE", "w1", 120);
  add("Qlosure", "w2", 50);
  add("SABRE", "w2", 75);
  auto Summary = swapRatioSummary(Records, "Qlosure", 550);
  EXPECT_DOUBLE_EQ(Summary["SABRE"].Medium, (1.2 + 1.5) / 2);
  // The reference mapper itself is excluded.
  EXPECT_EQ(Summary.count("Qlosure"), 0u);
}

TEST(HarnessTest, TimeoutsExcludedFromAverages) {
  std::vector<RunRecord> Records;
  RunRecord Ok;
  Ok.Mapper = "QMAP";
  Ok.BaselineDepth = 100;
  Ok.RoutedDepth = 300;
  Records.push_back(Ok);
  RunRecord Timeout;
  Timeout.Mapper = "QMAP";
  Timeout.BaselineDepth = 100;
  Timeout.TimedOut = true;
  Records.push_back(Timeout);
  auto Summary = depthFactorSummary(Records, 550);
  EXPECT_DOUBLE_EQ(Summary["QMAP"].Medium, 3.0);
  EXPECT_TRUE(Summary["QMAP"].MediumTimedOut);
}

TEST(HarnessTest, PaperRouterRegistry) {
  auto Names = paperRouterNames();
  EXPECT_EQ(Names.size(), 5u);
  auto Routers = makePaperRouters();
  ASSERT_EQ(Routers.size(), 5u);
  EXPECT_EQ(Routers[0]->name(), "SABRE");
  EXPECT_EQ(Routers[1]->name(), "QMAP");
  EXPECT_EQ(Routers[2]->name(), "Cirq");
  EXPECT_EQ(Routers[3]->name(), "Pytket");
  EXPECT_EQ(Routers[4]->name(), "Qlosure");
}

TEST(HarnessTest, AllPaperMappersOnOneCircuit) {
  CouplingGraph Hw = makeAspen16();
  Circuit C = makeQugan(12, 4);
  auto Routers = makePaperRouters();
  for (auto &Router : Routers) {
    RunRecord R = runOnce(*Router, C, Hw, C.depth());
    EXPECT_TRUE(R.Verified) << Router->name();
    EXPECT_GT(R.RoutedDepth, 0u) << Router->name();
  }
}
