//===- tests/CircuitTest.cpp - circuit IR tests ----------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "circuit/Circuit.h"
#include "circuit/Dag.h"

#include <gtest/gtest.h>

using namespace qlosure;

//===----------------------------------------------------------------------===//
// Gate
//===----------------------------------------------------------------------===//

TEST(GateTest, ArityTable) {
  EXPECT_EQ(gateArity(GateKind::H), 1u);
  EXPECT_EQ(gateArity(GateKind::CX), 2u);
  EXPECT_EQ(gateArity(GateKind::Swap), 2u);
  EXPECT_EQ(gateArity(GateKind::CCX), 3u);
}

TEST(GateTest, ParamTable) {
  EXPECT_EQ(gateNumParams(GateKind::H), 0u);
  EXPECT_EQ(gateNumParams(GateKind::RZ), 1u);
  EXPECT_EQ(gateNumParams(GateKind::U2), 2u);
  EXPECT_EQ(gateNumParams(GateKind::U3), 3u);
}

TEST(GateTest, Names) {
  EXPECT_STREQ(gateName(GateKind::CX), "cx");
  EXPECT_STREQ(gateName(GateKind::Sdg), "sdg");
  EXPECT_STREQ(gateName(GateKind::Swap), "swap");
}

TEST(GateTest, UsesQubitAndMapping) {
  Gate G(GateKind::CX, 2, 5);
  EXPECT_TRUE(G.usesQubit(2));
  EXPECT_TRUE(G.usesQubit(5));
  EXPECT_FALSE(G.usesQubit(3));
  Gate Mapped = G.withMappedQubits([](int32_t Q) { return Q + 10; });
  EXPECT_EQ(Mapped.Qubits[0], 12);
  EXPECT_EQ(Mapped.Qubits[1], 15);
}

TEST(GateTest, ToString) {
  Gate G(GateKind::CX, 0, 3);
  EXPECT_EQ(G.toString(), "cx q[0], q[3]");
  Gate R(GateKind::RZ, 1);
  R.Params[0] = 0.5;
  EXPECT_EQ(R.toString(), "rz(0.5) q[1]");
}

//===----------------------------------------------------------------------===//
// Circuit
//===----------------------------------------------------------------------===//

TEST(CircuitTest, CountsGates) {
  Circuit C(4);
  C.add1Q(GateKind::H, 0);
  C.addCx(0, 1);
  C.addSwap(2, 3);
  C.addGate(Gate(GateKind::Measure, 1));
  EXPECT_EQ(C.size(), 4u);
  EXPECT_EQ(C.numTwoQubitGates(), 2u);
  EXPECT_EQ(C.numSwapGates(), 1u);
  EXPECT_EQ(C.numQuantumOps(), 3u); // Measure excluded.
}

TEST(CircuitTest, DepthSerialChain) {
  Circuit C(2);
  for (int I = 0; I < 5; ++I)
    C.addCx(0, 1);
  EXPECT_EQ(C.depth(), 5u);
}

TEST(CircuitTest, DepthParallelGates) {
  Circuit C(4);
  C.addCx(0, 1);
  C.addCx(2, 3); // Independent: same level.
  EXPECT_EQ(C.depth(), 1u);
  C.addCx(1, 2); // Depends on both.
  EXPECT_EQ(C.depth(), 2u);
}

TEST(CircuitTest, DepthSwapCostModels) {
  Circuit C(2);
  C.addSwap(0, 1);
  C.addCx(0, 1);
  EXPECT_EQ(C.depth(SwapCostModel::SwapAsOneGate), 2u);
  EXPECT_EQ(C.depth(SwapCostModel::SwapAsThreeCx), 4u);
}

TEST(CircuitTest, BarrierAddsNoDepth) {
  // Barriers are stored per-qubit and cost nothing: the two H gates stay
  // on independent wires.
  Circuit C(2);
  C.add1Q(GateKind::H, 0);
  C.addGate(Gate(GateKind::Barrier, 0));
  C.addGate(Gate(GateKind::Barrier, 1));
  C.add1Q(GateKind::H, 1);
  EXPECT_EQ(C.depth(), 1u);
  // On the same wire, the barrier still adds nothing.
  Circuit D(1);
  D.add1Q(GateKind::H, 0);
  D.addGate(Gate(GateKind::Barrier, 0));
  D.add1Q(GateKind::H, 0);
  EXPECT_EQ(D.depth(), 2u);
}

TEST(CircuitTest, WithoutNonUnitaries) {
  Circuit C(2);
  C.add1Q(GateKind::H, 0);
  C.addGate(Gate(GateKind::Measure, 0));
  C.addGate(Gate(GateKind::Barrier, 1));
  Circuit U = C.withoutNonUnitaries();
  EXPECT_EQ(U.size(), 1u);
  EXPECT_EQ(U.gate(0).Kind, GateKind::H);
}

TEST(CircuitTest, MappedQubitsPreservesStructure) {
  Circuit C(3);
  C.addCx(0, 2);
  Circuit M = C.withMappedQubits([](int32_t Q) { return 2 - Q; });
  EXPECT_EQ(M.gate(0).Qubits[0], 2);
  EXPECT_EQ(M.gate(0).Qubits[1], 0);
}

TEST(CircuitTest, DecomposeCcxGateBudget) {
  Circuit C(3);
  C.addGate(Gate(GateKind::CCX, 0, 1, 2));
  Circuit D = C.decomposeThreeQubitGates();
  size_t TwoQ = 0, OneQ = 0;
  for (const Gate &G : D.gates()) {
    EXPECT_LE(G.numQubits(), 2u);
    (G.isTwoQubit() ? TwoQ : OneQ) += 1;
  }
  EXPECT_EQ(TwoQ, 6u); // Standard Toffoli: 6 CX.
  EXPECT_EQ(OneQ, 9u); // 2 H + 4 T + 3 Tdg.
}

TEST(CircuitTest, DecomposeCswap) {
  Circuit C(3);
  C.addGate(Gate(GateKind::CSwap, 0, 1, 2));
  Circuit D = C.decomposeThreeQubitGates();
  for (const Gate &G : D.gates())
    EXPECT_LE(G.numQubits(), 2u);
  // Fredkin = CX + Toffoli + CX.
  EXPECT_EQ(D.numTwoQubitGates(), 8u);
}

TEST(CircuitTest, VerifyInvariantsAcceptsValid) {
  Circuit C(2);
  C.addCx(0, 1);
  C.verifyInvariants(); // Must not abort.
}

//===----------------------------------------------------------------------===//
// CircuitDag
//===----------------------------------------------------------------------===//

TEST(DagTest, ChainDependences) {
  Circuit C(2);
  C.addCx(0, 1);
  C.addCx(0, 1);
  C.addCx(0, 1);
  CircuitDag Dag(C);
  EXPECT_EQ(Dag.numGates(), 3u);
  EXPECT_EQ(Dag.roots(), (std::vector<uint32_t>{0}));
  EXPECT_EQ(Dag.successors(0), (std::vector<uint32_t>{1}));
  EXPECT_EQ(Dag.predecessors(2), (std::vector<uint32_t>{1}));
}

TEST(DagTest, PaperFigure1Example) {
  // Fig. 1b of the paper: CNOTs (0,1) (2,3) (1,2) (3,5) (0,2) (1,5).
  Circuit C(6);
  C.addCx(0, 1); // G0
  C.addCx(2, 3); // G1
  C.addCx(1, 2); // G2
  C.addCx(3, 5); // G3
  C.addCx(0, 2); // G4
  C.addCx(1, 5); // G5
  CircuitDag Dag(C);
  // G0 and G1 are the roots.
  EXPECT_EQ(Dag.roots(), (std::vector<uint32_t>{0, 1}));
  // G2 depends on G0 (q1) and G1 (q2).
  EXPECT_EQ(Dag.predecessors(2).size(), 2u);
  // G4 depends on G0 (q0) and G2 (q2).
  std::vector<uint32_t> P4 = Dag.predecessors(4);
  std::sort(P4.begin(), P4.end());
  EXPECT_EQ(P4, (std::vector<uint32_t>{0, 2}));
  // G5 depends on G2 (q1) and G3 (q5).
  std::vector<uint32_t> P5 = Dag.predecessors(5);
  std::sort(P5.begin(), P5.end());
  EXPECT_EQ(P5, (std::vector<uint32_t>{2, 3}));
}

TEST(DagTest, NoDuplicateEdgeForSharedPair) {
  // Two consecutive gates on the same qubit pair create one edge, not two.
  Circuit C(2);
  C.addCx(0, 1);
  C.addCx(1, 0);
  CircuitDag Dag(C);
  EXPECT_EQ(Dag.successors(0).size(), 1u);
  EXPECT_EQ(Dag.inDegree(1), 1u);
}

TEST(DagTest, AsapLevels) {
  Circuit C(3);
  C.add1Q(GateKind::H, 0); // L0.
  C.addCx(0, 1);           // L1.
  C.addCx(1, 2);           // L2.
  C.add1Q(GateKind::X, 0); // L2 (after the CX on q0).
  CircuitDag Dag(C);
  auto Levels = Dag.asapLevels();
  EXPECT_EQ(Levels[0], 0u);
  EXPECT_EQ(Levels[1], 1u);
  EXPECT_EQ(Levels[2], 2u);
  EXPECT_EQ(Levels[3], 2u);
}

TEST(DagTest, ExactTransitiveCountsChain) {
  Circuit C(2);
  for (int I = 0; I < 4; ++I)
    C.addCx(0, 1);
  CircuitDag Dag(C);
  auto Counts = Dag.exactTransitiveSuccessorCounts();
  EXPECT_EQ(Counts, (std::vector<uint64_t>{3, 2, 1, 0}));
}

TEST(DagTest, ExactTransitiveCountsDiamond) {
  // G0 -> G1, G0 -> G2, G1 -> G3, G2 -> G3: G0 has 3 dependents, not 4.
  Circuit C(4);
  C.addCx(0, 1); // G0.
  C.addCx(0, 2); // G1 (dep on G0 via q0).
  C.addCx(1, 3); // G2 (dep on G0 via q1).
  C.addCx(2, 3); // G3 (dep on G1 via q2, G2 via q3).
  CircuitDag Dag(C);
  auto Counts = Dag.exactTransitiveSuccessorCounts();
  EXPECT_EQ(Counts[0], 3u);
  EXPECT_EQ(Counts[1], 1u);
  EXPECT_EQ(Counts[2], 1u);
  EXPECT_EQ(Counts[3], 0u);
}

TEST(DagTest, ExactCountsOnPaperExample) {
  Circuit C(6);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(1, 2);
  C.addCx(3, 5);
  C.addCx(0, 2);
  C.addCx(1, 5);
  CircuitDag Dag(C);
  auto Counts = Dag.exactTransitiveSuccessorCounts();
  // G2 unlocks G4 and G5; G0 unlocks G2, G4, G5.
  EXPECT_EQ(Counts[2], 2u);
  EXPECT_EQ(Counts[0], 3u);
  EXPECT_EQ(Counts[5], 0u);
}
