//===- tests/MiscCoverageTest.cpp - focused corner-case coverage ------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "affine/Lifter.h"
#include "baselines/Sabre.h"
#include "circuit/Dag.h"
#include "eval/Harness.h"
#include "presburger/Counting.h"
#include "qasm/Importer.h"
#include "qasm/Printer.h"
#include "route/FrontLayer.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

using namespace qlosure;
using namespace qlosure::presburger;

//===----------------------------------------------------------------------===//
// QASM frontend corners
//===----------------------------------------------------------------------===//

TEST(QasmCornerTest, MultiParamGateRoundTrip) {
  Circuit C(1, "u3rt");
  Gate G(GateKind::U3, 0);
  G.Params[0] = 0.1;
  G.Params[1] = 0.2;
  G.Params[2] = 0.3;
  C.addGate(G);
  auto R = qasm::importQasm(qasm::printQasm(C));
  ASSERT_TRUE(R.succeeded()) << R.Error;
  ASSERT_EQ(R.Circ->size(), 1u);
  EXPECT_EQ(R.Circ->gate(0).Kind, GateKind::U3);
  EXPECT_NEAR(R.Circ->gate(0).Params[1], 0.2, 1e-15);
  EXPECT_NEAR(R.Circ->gate(0).Params[2], 0.3, 1e-15);
}

TEST(QasmCornerTest, ResetIsIgnoredNotRejected) {
  auto R = qasm::importQasm("qreg q[2]; reset q[0]; h q[1];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 1u); // Only the H survives.
}

TEST(QasmCornerTest, UAliasMapsToU3) {
  auto R = qasm::importQasm("qreg q[1]; u(0.1,0.2,0.3) q[0];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->gate(0).Kind, GateKind::U3);
}

TEST(QasmCornerTest, MathFunctionsInParams) {
  auto R = qasm::importQasm("qreg q[1]; rz(cos(0)) q[0];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_DOUBLE_EQ(R.Circ->gate(0).Params[0], 1.0);
}

TEST(QasmCornerTest, BarrierInsideGateBodySkipped) {
  auto R = qasm::importQasm(
      "gate g a,b { cx a,b; barrier a,b; cx b,a; }\n"
      "qreg q[2]; g q[0],q[1];");
  ASSERT_TRUE(R.succeeded()) << R.Error;
  EXPECT_EQ(R.Circ->size(), 2u);
}

//===----------------------------------------------------------------------===//
// Lifter options
//===----------------------------------------------------------------------===//

TEST(LifterOptionsTest, MinRunLengthOneKeepsShortRuns) {
  Circuit C(6);
  C.addCx(0, 1);
  C.addCx(2, 3); // Accidental stride-2 run of two.
  LifterOptions Keep;
  Keep.MinRunLength = 2;
  AffineCircuit AC = liftCircuit(C, Keep);
  EXPECT_EQ(AC.numStatements(), 1u);
  EXPECT_EQ(AC.statement(0).TripCount, 2);
}

TEST(LifterOptionsTest, CompressionRatioDefinition) {
  Circuit C(2);
  for (int I = 0; I < 10; ++I)
    C.addCx(0, 1);
  AffineCircuit AC = liftCircuit(C);
  EXPECT_DOUBLE_EQ(AC.compressionRatio(), 10.0);
}

//===----------------------------------------------------------------------===//
// Front layer windows
//===----------------------------------------------------------------------===//

TEST(FrontLayerWindowTest, TwoQubitCountingSkipsOneQGates) {
  // h h h cx h h h cx ...: a 2Q budget of 2 must reach the second CX.
  Circuit C(4);
  for (int R = 0; R < 3; ++R) {
    C.add1Q(GateKind::H, 0);
    C.add1Q(GateKind::H, 1);
    C.addCx(0, 1);
  }
  CircuitDag Dag(C);
  RoutingScratch Scratch;
  FrontLayerTracker T(Dag, Scratch);
  auto Plain = T.topologicalWindow(2, /*CountTwoQubitOnly=*/false);
  EXPECT_EQ(Plain.size(), 2u); // Two 1Q gates only.
  auto TwoQ = T.topologicalWindow(2, /*CountTwoQubitOnly=*/true);
  size_t NumTwoQ = 0;
  for (uint32_t G : TwoQ)
    NumTwoQ += Dag.isTwoQubitGate(G);
  EXPECT_EQ(NumTwoQ, 2u);
  EXPECT_GT(TwoQ.size(), 2u); // The traversed 1Q gates come along.
}

//===----------------------------------------------------------------------===//
// SABRE options
//===----------------------------------------------------------------------===//

TEST(SabreOptionsTest, ExtendedWindowChangesBehavior) {
  // With no extended window, SABRE becomes purely local; both variants
  // must still verify, and options must be respected (smoke check via
  // differing swap sequences on a long-range workload).
  CouplingGraph Hw = makeLine(10);
  Circuit C(10);
  for (int I = 0; I < 8; ++I)
    C.addCx(0, 9 - I % 3);
  SabreOptions NoExt;
  NoExt.ExtendedSetSize = 0;
  SabreRouter A(NoExt);
  SabreRouter B; // Default 20.
  auto RA = A.routeWithIdentity(C, Hw);
  auto RB = B.routeWithIdentity(C, Hw);
  EXPECT_GT(RA.NumSwaps, 0u);
  EXPECT_GT(RB.NumSwaps, 0u);
}

//===----------------------------------------------------------------------===//
// Presburger odds and ends
//===----------------------------------------------------------------------===//

TEST(PresburgerCornerTest, SimplifyDropsEmptyPieces) {
  IntegerSet S(1);
  BasicSet Contradiction(1);
  Contradiction.addConstraint(makeGe(AffineExpr::constant(1, -1),
                                     AffineExpr::constant(1, 0)));
  S.addPiece(Contradiction);
  BasicSet Fine(1);
  Fine.addBounds(0, 0, 3);
  S.addPiece(Fine);
  S.simplify();
  EXPECT_EQ(S.pieces().size(), 1u);
}

TEST(PresburgerCornerTest, ToStringIsInformative) {
  BasicSet B(1);
  B.addBounds(0, 0, 3);
  std::string Text = B.toString();
  EXPECT_NE(Text.find("x0"), std::string::npos);
  IntegerSet Empty(2);
  EXPECT_EQ(Empty.toString(), "{ }");
}

TEST(PresburgerCornerTest, CountImageOnEmptyInput) {
  BasicSet Dom(1);
  Dom.addBounds(0, 0, 4);
  IntegerMap M(BasicMap::translation(Dom, {1}));
  auto N = countImage(M, {99}); // Outside the domain.
  ASSERT_TRUE(N.has_value());
  EXPECT_EQ(*N, 0);
}

TEST(PresburgerCornerTest, ZeroDimensionalSets) {
  BasicSet Unit(0);
  EXPECT_TRUE(Unit.contains({}));
  auto Points = Unit.enumeratePoints();
  ASSERT_TRUE(Points.has_value());
  EXPECT_EQ(Points->size(), 1u); // The empty tuple.
}

//===----------------------------------------------------------------------===//
// Harness / workload corners
//===----------------------------------------------------------------------===//

TEST(HarnessCornerTest, DepthFactorZeroBaseline) {
  RunRecord R;
  R.RoutedDepth = 50;
  R.BaselineDepth = 0;
  EXPECT_DOUBLE_EQ(R.depthFactor(), 0.0);
}

TEST(WorkloadCornerTest, QuekoDepthOne) {
  QuekoSpec Spec;
  Spec.Depth = 1;
  Spec.Seed = 3;
  QuekoInstance I = generateQueko(makeAspen16(), Spec);
  EXPECT_EQ(I.Circ.depth(), 1u);
  EXPECT_GT(I.Circ.size(), 0u);
}

TEST(WorkloadCornerTest, WeightedDistanceSymmetry) {
  CouplingGraph G = makeGrid(3, 3);
  applySyntheticErrorModel(G, 23);
  for (unsigned A = 0; A < 9; ++A)
    for (unsigned B = 0; B < 9; ++B)
      EXPECT_DOUBLE_EQ(G.weightedDistance(A, B), G.weightedDistance(B, A));
}

TEST(WorkloadCornerTest, SuiteCircuitsAreRoutableSmoke) {
  // Every suite circuit fits on Sherbrooke and has sane depth bounds.
  CouplingGraph Hw = makeSherbrooke();
  for (const NamedCircuit &NC : standardQasmBenchSuite()) {
    EXPECT_LE(NC.Circ.numQubits(), Hw.numQubits()) << NC.Name;
    EXPECT_GE(NC.Circ.depth(), 1u) << NC.Name;
    EXPECT_LE(NC.Circ.depth(), NC.Circ.size()) << NC.Name;
  }
}
