#!/usr/bin/env bash
# End-to-end smoke of the qlosured daemon with the real binaries: boot on
# a temp socket, route a QUEKO circuit through qlosure-client, assert the
# response verifies, assert the repeated request reports a cache hit, and
# shut the daemon down cleanly over the protocol. Run by ctest
# (service-smoke) and the CI service job.
#
# usage: service_smoke.sh BIN_DIR QUEKO_QASM
set -euo pipefail

BIN_DIR=${1:?usage: service_smoke.sh BIN_DIR QUEKO_QASM}
QASM=${2:?usage: service_smoke.sh BIN_DIR QUEKO_QASM}
SOCK="/tmp/qlosured-smoke-$$.sock"
RESP="/tmp/qlosured-smoke-$$.json"

cleanup() {
  [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$RESP" "$SOCK"
}
trap cleanup EXIT

"$BIN_DIR/qlosured" --socket "$SOCK" --workers 2 &
DAEMON_PID=$!

# First request: --connect-timeout retries until the daemon has bound.
# Exit code 0 implies a non-error response; the stats must say verified.
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  route --backend aspen16 --stats-only "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
grep -q '"cache_hit":false' "$RESP"
echo "service-smoke: first request verified (cold)"

# The identical request again must be served from the cache.
"$BIN_DIR/qlosure-client" --socket "$SOCK" \
  route --backend aspen16 --stats-only --expect-cache-hit "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
echo "service-smoke: repeated request hit the cache"

# Malformed traffic must produce structured errors, never kill the daemon.
"$BIN_DIR/qlosure-client" --socket "$SOCK" route --mapper nope \
  --backend aspen16 "$QASM" > "$RESP" && status=0 || status=$?
[[ "$status" -eq 1 ]] # error response, not a transport failure
grep -q '"code":"unknown_mapper"' "$RESP"
echo "service-smoke: malformed request answered with a structured error"

# Graceful protocol shutdown: the daemon must exit 0 and unlink its socket.
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
[[ ! -e "$SOCK" ]]
echo "service-smoke: daemon shut down cleanly"
