#!/usr/bin/env bash
# End-to-end smoke of the qlosured daemon with the real binaries: boot on
# a temp socket, route a QUEKO circuit through qlosure-client, assert the
# response verifies, assert the repeated request reports a cache hit,
# cancel an in-flight deep route mid-flight (protocol v2), and shut the
# daemon down cleanly over the protocol. Run by ctest (service-smoke) and
# the CI service job.
#
# usage: service_smoke.sh BIN_DIR QUEKO_QASM
set -euo pipefail

BIN_DIR=${1:?usage: service_smoke.sh BIN_DIR QUEKO_QASM}
QASM=${2:?usage: service_smoke.sh BIN_DIR QUEKO_QASM}
SOCK="/tmp/qlosured-smoke-$$.sock"
RESP="/tmp/qlosured-smoke-$$.json"
DEEP="/tmp/qlosured-smoke-$$-deep.qasm"
LOOP="/tmp/qlosured-smoke-$$-loop.qasm"
STATS_ERR="/tmp/qlosured-smoke-$$-stats.err"
STORE="/tmp/qlosured-smoke-$$.qstore"

cleanup() {
  [[ -n "${DAEMON_PID:-}" ]] && kill "$DAEMON_PID" 2>/dev/null || true
  rm -f "$RESP" "$SOCK" "$DEEP" "$LOOP" "$STATS_ERR" "$STORE" \
    "$STORE.compact"
}
trap cleanup EXIT

"$BIN_DIR/qlosured" --socket "$SOCK" --workers 2 &
DAEMON_PID=$!

# First request: --connect-timeout retries until the daemon has bound.
# Exit code 0 implies a non-error response; the stats must say verified.
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  route --backend aspen16 --stats-only "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
grep -q '"cache_hit":false' "$RESP"
echo "service-smoke: first request verified (cold)"

# The identical request again must be served from the cache.
"$BIN_DIR/qlosure-client" --socket "$SOCK" \
  route --backend aspen16 --stats-only --expect-cache-hit "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
echo "service-smoke: repeated request hit the cache"

# Malformed traffic must produce structured errors, never kill the daemon.
"$BIN_DIR/qlosure-client" --socket "$SOCK" route --mapper nope \
  --backend aspen16 "$QASM" > "$RESP" && status=0 || status=$?
[[ "$status" -eq 1 ]] # error response, not a transport failure
grep -q '"code":"unknown_mapper"' "$RESP"
echo "service-smoke: malformed request answered with a structured error"

# Affine fast path over the wire: a hand-rolled periodic circuit (one CX
# ladder repeated eight times) routed with "affine":true must verify, and
# the stats document must expose the affine counters as plain numbers —
# both in the raw JSON (stdout) and in the client's stderr summary.
{
  echo 'OPENQASM 2.0;'
  echo 'include "qelib1.inc";'
  echo 'qreg q[8];'
  for _ in 1 2 3 4 5 6 7 8; do
    for i in 0 1 2 3 4 5 6; do echo "cx q[$i],q[$((i+1))];"; done
  done
} > "$LOOP"
"$BIN_DIR/qlosure-client" --socket "$SOCK" \
  route --backend aspen16 --affine --stats-only "$LOOP" > "$RESP"
grep -q '"verified":true' "$RESP"
"$BIN_DIR/qlosure-client" --socket "$SOCK" stats \
  > "$RESP" 2> "$STATS_ERR"
grep -Eq '"affine_replays":[0-9]+' "$RESP"
grep -Eq '"affine_fallbacks":[0-9]+' "$RESP"
grep -Eq 'affine replays [0-9]+, affine fallbacks [0-9]+' "$STATS_ERR"
echo "service-smoke: affine route verified; stats expose the counters"

# Mid-route cancellation (protocol v2): generate a QUEKO circuit deep
# enough that qmap needs many seconds on sherbrooke2x, submit it, cancel
# it 300 ms later on the same connection, and require the final response
# to be the structured `cancelled` error — promptly, not after the full
# route.
"$BIN_DIR/qlosure-queko" --device kings9x9 --depth 1200 --seed 3 \
  --output "$DEEP" 2> /dev/null
SECONDS=0  # bash's built-in timer: portable, unlike date +%N
"$BIN_DIR/qlosure-client" --socket "$SOCK" route --mapper qmap \
  --backend sherbrooke2x --stats-only --id slow --cancel-after-ms 300 \
  "$DEEP" > "$RESP" 2> /dev/null && status=0 || status=$?
ELAPSED_S=$SECONDS
[[ "$status" -eq 1 ]] # the final response is an error response
grep -q '"code":"cancelled"' "$RESP"
[[ "$ELAPSED_S" -le 2 ]] # cancelled ~300 ms in, answered well under the multi-second full route
echo "service-smoke: in-flight route cancelled after ~${ELAPSED_S}s (cancel sent at 300ms)"

# Graceful protocol shutdown: the daemon must exit 0 and unlink its socket.
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
[[ ! -e "$SOCK" ]]
echo "service-smoke: daemon shut down cleanly"

# Durable result store: routed results written under --store must be
# served as cache hits by a fresh daemon restarted on the same file
# (tests/store_crash.sh covers the crash/corruption legs).
"$BIN_DIR/qlosured" --socket "$SOCK" --store "$STORE" --workers 2 &
DAEMON_PID=$!
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  route --backend aspen16 --stats-only "$QASM" > "$RESP"
grep -q '"result_cache_hit":false' "$RESP"
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
"$BIN_DIR/qlosured" --socket "$SOCK" --store "$STORE" --workers 2 &
DAEMON_PID=$!
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  route --backend aspen16 --stats-only --expect-cache-hit "$QASM" > "$RESP"
grep -q '"result_cache_hit":true' "$RESP"
"$BIN_DIR/qlosure-client" --socket "$SOCK" stats > "$RESP"
grep -Eq '"store":\{' "$RESP"
grep -Eq '"records":[1-9]' "$RESP"
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
echo "service-smoke: warm result survived a daemon restart via --store"
