//===- tests/RoutingScratchTest.cpp - scratch kernel correctness -----------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocation-free kernel's correctness hinges on two properties this
/// file pins down: (1) epoch-stamped buffers really do reset in O(1) —
/// stale entries from a previous step/route can never leak into the next;
/// (2) routing through one long-lived scratch is byte-identical to routing
/// with a fresh scratch per call, for every mapper and in any interleaving.
/// Plus the livelock regression test for GreedyRouterBase's
/// maxSwapsWithoutProgress escape hatch.
///
//===----------------------------------------------------------------------===//

#include "baselines/GreedyRouterBase.h"
#include "baselines/RouterRegistry.h"
#include "circuit/Dag.h"
#include "route/FrontLayer.h"
#include "route/RoutingScratch.h"
#include "route/Verify.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"
#include "workloads/Queko.h"

#include <gtest/gtest.h>

using namespace qlosure;

//===----------------------------------------------------------------------===//
// EpochArray semantics
//===----------------------------------------------------------------------===//

TEST(EpochArrayTest, StaleEntriesReadValueInitialized) {
  EpochArray<unsigned> A;
  A.ensure(4);
  A.beginEpoch();
  EXPECT_FALSE(A.fresh(0));
  EXPECT_EQ(A.get(0), 0u);
  A.set(0, 7);
  A.set(3, 9);
  EXPECT_TRUE(A.fresh(0));
  EXPECT_TRUE(A.fresh(3));
  EXPECT_FALSE(A.fresh(1));
  EXPECT_EQ(A.get(0), 7u);
  EXPECT_EQ(A.get(1), 0u);
  EXPECT_EQ(A.get(3), 9u);
}

TEST(EpochArrayTest, BeginEpochInvalidatesEverythingInO1) {
  EpochArray<unsigned> A;
  A.ensure(3);
  A.beginEpoch();
  A.set(0, 1);
  A.set(1, 2);
  A.set(2, 3);
  A.beginEpoch(); // No refill happens; stamps are simply outdated.
  for (size_t I = 0; I < 3; ++I) {
    EXPECT_FALSE(A.fresh(I)) << I;
    EXPECT_EQ(A.get(I), 0u) << I;
  }
  // Old payloads must not resurface across many epochs either.
  for (int E = 0; E < 100; ++E)
    A.beginEpoch();
  EXPECT_FALSE(A.fresh(1));
  EXPECT_EQ(A.get(1), 0u);
}

TEST(EpochArrayTest, EnsureGrowsWithoutDisturbingFreshEntries) {
  EpochArray<int> A;
  A.ensure(2);
  A.beginEpoch();
  A.set(1, 42);
  A.ensure(8); // Growth: new slots are stale, old stay fresh.
  EXPECT_TRUE(A.fresh(1));
  EXPECT_EQ(A.get(1), 42);
  for (size_t I = 2; I < 8; ++I)
    EXPECT_FALSE(A.fresh(I)) << I;
}

TEST(EpochArrayTest, RefMutatesFreshEntry) {
  EpochArray<uint32_t> A;
  A.ensure(1);
  A.beginEpoch();
  A.set(0, 5);
  --A.ref(0);
  --A.ref(0);
  EXPECT_EQ(A.get(0), 3u);
}

//===----------------------------------------------------------------------===//
// Scratch reuse is byte-identical to fresh scratches
//===----------------------------------------------------------------------===//

namespace {

bool sameRouting(const RoutingResult &A, const RoutingResult &B) {
  if (A.NumSwaps != B.NumSwaps || A.Routed.size() != B.Routed.size() ||
      A.InsertedSwapFlags != B.InsertedSwapFlags ||
      !(A.FinalMapping == B.FinalMapping))
    return false;
  for (size_t I = 0; I < A.Routed.size(); ++I) {
    const Gate &GA = A.Routed.gate(I);
    const Gate &GB = B.Routed.gate(I);
    if (GA.Kind != GB.Kind || GA.Qubits != GB.Qubits ||
        GA.Params != GB.Params)
      return false;
  }
  return true;
}

} // namespace

TEST(RoutingScratchTest, RepeatedRoutesThroughOneScratchAreIdentical) {
  CouplingGraph Hw = makeGrid(4, 4);
  QuekoSpec Spec;
  Spec.Depth = 25;
  Spec.Seed = 11;
  Circuit C = generateQueko(makeKingsGrid(4, 4), Spec).Circ;
  for (const std::string &Name : paperRouterNames()) {
    auto Router = makeRouterByName(Name);
    RoutingContext Ctx =
        RoutingContext::build(C, Hw, Router->contextOptions());
    RoutingScratch Shared;
    RoutingResult First = Router->routeWithIdentity(Ctx, Shared);
    // Second run reuses a dirty scratch; any stale epoch/buffer leak
    // would perturb the decision sequence.
    RoutingResult Second = Router->routeWithIdentity(Ctx, Shared);
    RoutingScratch Fresh;
    RoutingResult Clean = Router->routeWithIdentity(Ctx, Fresh);
    EXPECT_TRUE(sameRouting(First, Second)) << Name;
    EXPECT_TRUE(sameRouting(First, Clean)) << Name;
    EXPECT_TRUE(verifyRouting(C, Hw, Second).Ok) << Name;
  }
}

TEST(RoutingScratchTest, CrossMapperScratchSharingIsIdentical) {
  // One scratch serving all five mappers in sequence (the BatchRunner
  // worker shape) must match per-mapper fresh scratches: no mapper may
  // depend on scratch state a different mapper left behind.
  CouplingGraph Hw = makeAspen16();
  Circuit C = makeQft(10);
  RoutingScratch Shared;
  for (const std::string &Name : paperRouterNames()) {
    auto Router = makeRouterByName(Name);
    RoutingContext Ctx =
        RoutingContext::build(C, Hw, Router->contextOptions());
    RoutingResult SharedRun = Router->routeWithIdentity(Ctx, Shared);
    RoutingResult CleanRun = Router->routeWithIdentity(Ctx);
    EXPECT_TRUE(sameRouting(SharedRun, CleanRun)) << Name;
  }
}

TEST(RoutingScratchTest, ScratchSurvivesGrowingAndShrinkingCircuits) {
  // Big circuit warms large buffers; a small circuit must then not read
  // beyond its own range (stale large-circuit state), and vice versa.
  CouplingGraph Hw = makeGrid(4, 4);
  QuekoSpec Big;
  Big.Depth = 30;
  Big.Seed = 3;
  Circuit Large = generateQueko(makeKingsGrid(4, 4), Big).Circ;
  Circuit Small = makeGhz(5);
  auto Router = makeRouterByName("qlosure");
  RoutingContext LargeCtx =
      RoutingContext::build(Large, Hw, Router->contextOptions());
  RoutingContext SmallCtx =
      RoutingContext::build(Small, Hw, Router->contextOptions());
  RoutingScratch Shared;
  RoutingResult L1 = Router->routeWithIdentity(LargeCtx, Shared);
  RoutingResult S1 = Router->routeWithIdentity(SmallCtx, Shared);
  RoutingResult L2 = Router->routeWithIdentity(LargeCtx, Shared);
  EXPECT_TRUE(sameRouting(L1, L2));
  EXPECT_TRUE(sameRouting(S1, Router->routeWithIdentity(SmallCtx)));
  EXPECT_TRUE(verifyRouting(Small, Hw, S1).Ok);
}

TEST(RoutingScratchTest, TopologicalWindowIdenticalOnDirtyScratch) {
  Circuit C(4);
  C.addCx(0, 1);
  C.addCx(2, 3);
  C.addCx(1, 2);
  C.addCx(0, 3);
  CircuitDag Dag(C);
  RoutingScratch Dirty;
  FrontLayerTracker T1(Dag, Dirty);
  // Dirty the window state with interleaved calls and executions.
  (void)T1.topologicalWindow(3);
  T1.execute(0);
  (void)T1.topologicalWindow(2);
  std::vector<uint32_t> DirtyWindow = T1.topologicalWindow(4);

  RoutingScratch Clean;
  FrontLayerTracker T2(Dag, Clean);
  T2.execute(0);
  std::vector<uint32_t> CleanWindow = T2.topologicalWindow(4);
  EXPECT_EQ(DirtyWindow, CleanWindow);
}

//===----------------------------------------------------------------------===//
// Livelock escape hatch (maxSwapsWithoutProgress)
//===----------------------------------------------------------------------===//

namespace {

/// Adversarial greedy router: every candidate SWAP scores the same, so
/// the base class always applies the first candidate — which swaps one
/// pair back and forth forever and never unblocks the distant gate. Only
/// the maxSwapsWithoutProgress escape hatch can terminate the routing.
class ThrashingRouter : public GreedyRouterBase {
public:
  std::string name() const override { return "Thrash"; }

protected:
  size_t extendedWindowSize(size_t) const override { return 0; }
  double scoreFromSums(double, double, double, double, size_t,
                       size_t) const override {
    return 0.0; // Constant: greedy descent gets no signal at all.
  }
  unsigned maxSwapsWithoutProgress() const override { return 4; }
};

} // namespace

TEST(LivelockEscapeTest, ThrashingScoreStillTerminatesVerified) {
  CouplingGraph Hw = makeLine(8);
  Circuit C(8, "livelock");
  C.addCx(0, 7); // Distance 7 under identity: blocked for a long time.
  C.addCx(3, 4); // Adjacent afterwards (wherever the escape leaves them).
  ThrashingRouter Router;
  RoutingResult R = Router.routeWithIdentity(C, Hw);
  VerifyResult V = verifyRouting(C, Hw, R);
  EXPECT_TRUE(V.Ok) << V.Message;
  // The constant score thrashes the first candidate pair for 4 swaps,
  // then the escape hatch walks qubit 0 down the line: strictly more
  // swaps than the shortest-path minimum, and at least one thrash round.
  EXPECT_GE(R.NumSwaps, 4u + 6u);
  EXPECT_EQ(R.Routed.size(), C.size() + R.NumSwaps);
}

TEST(LivelockEscapeTest, EscapeFiresRepeatedlyOnSequentialBlockedGates) {
  // Several far-apart gates in sequence: every one of them has to go
  // through a fresh thrash + escape cycle on a ring.
  CouplingGraph Hw = makeRing(10);
  Circuit C(10, "livelock-seq");
  C.addCx(0, 5);
  C.addCx(1, 6);
  C.addCx(2, 7);
  ThrashingRouter Router;
  RoutingResult R = Router.routeWithIdentity(C, Hw);
  EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
  EXPECT_GT(R.NumSwaps, 0u);
}

TEST(LivelockEscapeTest, ScratchReuseAcrossThrashingRoutes) {
  // The escape path must also be scratch-clean: same result on a dirty
  // scratch as on a fresh one.
  CouplingGraph Hw = makeLine(8);
  Circuit C(8, "livelock");
  C.addCx(0, 7);
  ThrashingRouter Router;
  RoutingContext Ctx = RoutingContext::build(C, Hw);
  RoutingScratch Shared;
  RoutingResult A = Router.routeWithIdentity(Ctx, Shared);
  RoutingResult B = Router.routeWithIdentity(Ctx, Shared);
  EXPECT_TRUE(sameRouting(A, B));
}
