//===- tests/TopologyTest.cpp - coupling graph tests ------------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "topology/Backends.h"
#include "topology/CouplingGraph.h"

#include <gtest/gtest.h>

using namespace qlosure;

TEST(CouplingGraphTest, EdgesAndAdjacency) {
  CouplingGraph G(3);
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(1, 0); // Duplicate ignored.
  EXPECT_EQ(G.numEdges(), 2u);
  EXPECT_TRUE(G.areAdjacent(0, 1));
  EXPECT_TRUE(G.areAdjacent(1, 0));
  EXPECT_FALSE(G.areAdjacent(0, 2));
}

TEST(CouplingGraphTest, DistancesOnLine) {
  CouplingGraph G = makeLine(5);
  EXPECT_EQ(G.distance(0, 4), 4u);
  EXPECT_EQ(G.distance(2, 2), 0u);
  EXPECT_EQ(G.distance(4, 0), 4u); // Symmetry.
}

TEST(CouplingGraphTest, DistancesOnRing) {
  CouplingGraph G = makeRing(6);
  EXPECT_EQ(G.distance(0, 3), 3u);
  EXPECT_EQ(G.distance(0, 5), 1u); // Wraps around.
}

TEST(CouplingGraphTest, ShortestPathEndpointsAndSteps) {
  CouplingGraph G = makeGrid(3, 3);
  auto Path = G.shortestPath(0, 8);
  EXPECT_EQ(Path.front(), 0u);
  EXPECT_EQ(Path.back(), 8u);
  EXPECT_EQ(Path.size(), G.distance(0, 8) + 1);
  for (size_t I = 0; I + 1 < Path.size(); ++I)
    EXPECT_TRUE(G.areAdjacent(Path[I], Path[I + 1]));
}

TEST(CouplingGraphTest, ConnectivityDetection) {
  CouplingGraph G(4);
  G.addEdge(0, 1);
  G.addEdge(2, 3);
  EXPECT_FALSE(G.isConnected());
  G.addEdge(1, 2);
  EXPECT_TRUE(G.isConnected());
}

TEST(CouplingGraphTest, MaxDegree) {
  EXPECT_EQ(makeLine(5).maxDegree(), 2u);
  EXPECT_EQ(makeGrid(3, 3).maxDegree(), 4u);
  EXPECT_EQ(makeKingsGrid(3, 3).maxDegree(), 8u);
}

//===----------------------------------------------------------------------===//
// Paper backends
//===----------------------------------------------------------------------===//

TEST(BackendsTest, SherbrookeShape) {
  CouplingGraph G = makeSherbrooke();
  EXPECT_EQ(G.numQubits(), 127u);
  EXPECT_EQ(G.numEdges(), 144u); // IBM Eagle heavy-hex edge count.
  EXPECT_LE(G.maxDegree(), 3u);  // Heavy-hex: at most three neighbors.
  EXPECT_TRUE(G.isConnected());
}

TEST(BackendsTest, SherbrookeKnownCouplings) {
  CouplingGraph G = makeSherbrooke();
  // Published ibm_sherbrooke couplings: 0-14-18 column and row runs.
  EXPECT_TRUE(G.areAdjacent(0, 1));
  EXPECT_TRUE(G.areAdjacent(0, 14));
  EXPECT_TRUE(G.areAdjacent(14, 18));
  EXPECT_TRUE(G.areAdjacent(4, 15));
  EXPECT_TRUE(G.areAdjacent(15, 22));
  EXPECT_FALSE(G.areAdjacent(13, 14)); // Bridge only links rows.
}

TEST(BackendsTest, Ankaa3Shape) {
  CouplingGraph G = makeAnkaa3();
  EXPECT_EQ(G.numQubits(), 82u);
  EXPECT_LE(G.maxDegree(), 4u); // Square lattice.
  EXPECT_TRUE(G.isConnected());
}

TEST(BackendsTest, Sherbrooke2XShape) {
  CouplingGraph G = makeSherbrooke2X();
  EXPECT_EQ(G.numQubits(), 256u);
  EXPECT_TRUE(G.isConnected());
  // Exactly two bridge qubits with degree 2 linking the copies.
  EXPECT_EQ(G.numEdges(), 144u * 2 + 4);
}

TEST(BackendsTest, KingsGrids) {
  EXPECT_EQ(makeKings9x9().numQubits(), 81u);
  EXPECT_EQ(makeKings16x16().numQubits(), 256u);
  // Interior qubit of a 9x9 king's graph has eight neighbors.
  CouplingGraph G = makeKings9x9();
  EXPECT_EQ(G.neighbors(9 * 4 + 4).size(), 8u);
  EXPECT_EQ(G.neighbors(0).size(), 3u); // Corner.
}

TEST(BackendsTest, Aspen16Shape) {
  CouplingGraph G = makeAspen16();
  EXPECT_EQ(G.numQubits(), 16u);
  EXPECT_EQ(G.numEdges(), 18u); // Two octagons + two rungs.
  EXPECT_LE(G.maxDegree(), 3u);
  EXPECT_TRUE(G.isConnected());
}

TEST(BackendsTest, Sycamore54Shape) {
  CouplingGraph G = makeSycamore54();
  EXPECT_EQ(G.numQubits(), 54u);
  EXPECT_LE(G.maxDegree(), 4u);
  EXPECT_TRUE(G.isConnected());
}

TEST(BackendsTest, LookupByName) {
  EXPECT_EQ(makeBackendByName("sherbrooke").numQubits(), 127u);
  EXPECT_EQ(makeBackendByName("ankaa3").numQubits(), 82u);
  EXPECT_EQ(makeBackendByName("sherbrooke2x").numQubits(), 256u);
  EXPECT_EQ(makeBackendByName("kings9x9").numQubits(), 81u);
  EXPECT_EQ(makeBackendByName("kings16x16").numQubits(), 256u);
}

TEST(BackendsTest, DistancesPrecomputedEverywhere) {
  for (const char *Name : {"sherbrooke", "ankaa3", "sherbrooke2x",
                           "kings9x9", "kings16x16"}) {
    CouplingGraph G = makeBackendByName(Name);
    EXPECT_TRUE(G.hasDistances()) << Name;
    // Spot-check symmetry and the triangle inequality on a few triples.
    unsigned N = G.numQubits();
    for (unsigned A = 0; A < N; A += N / 5)
      for (unsigned B = 0; B < N; B += N / 7) {
        EXPECT_EQ(G.distance(A, B), G.distance(B, A));
        unsigned Mid = (A + B) / 2;
        EXPECT_LE(G.distance(A, B),
                  G.distance(A, Mid) + G.distance(Mid, B));
      }
  }
}
