//===- tests/TransportTest.cpp - Transport seam and framing tests ---------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the transport seam (service/Transport.h) and the SocketIO
/// framing discipline it rides on: endpoint-address parsing, the
/// bounded-exponential BackoffPolicy, listener/connect round trips over
/// both transports, EINTR resilience of the recv/send loops under a
/// deliberate signal storm, partial-write completion under a tiny
/// SO_SNDBUF, and the request-line size boundary of the server framing
/// layer (exactly-at-limit accepted, one-over rejected) on both unix:
/// and tcp: endpoints.
///
//===----------------------------------------------------------------------===//

#include "service/Client.h"
#include "service/Server.h"
#include "service/SocketIO.h"
#include "service/Transport.h"
#include "support/Json.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include <pthread.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace qlosure;
using namespace qlosure::service;

namespace {

std::string tempSocketPath() {
  static std::atomic<unsigned> Counter{0};
  return formatString("/tmp/qlt-%d-%u.sock", static_cast<int>(getpid()),
                      Counter.fetch_add(1));
}

//===----------------------------------------------------------------------===//
// Endpoint parsing
//===----------------------------------------------------------------------===//

TEST(TransportTest, ParsesAddressSchemes) {
  Endpoint Ep;

  ASSERT_TRUE(parseEndpoint("unix:/tmp/a.sock", Ep).ok());
  EXPECT_EQ(Ep.Transport, Endpoint::Kind::Unix);
  EXPECT_EQ(Ep.Path, "/tmp/a.sock");
  EXPECT_EQ(Ep.str(), "unix:/tmp/a.sock");

  // A bare path is backward-compatible shorthand for unix:.
  ASSERT_TRUE(parseEndpoint("/tmp/bare.sock", Ep).ok());
  EXPECT_EQ(Ep.Transport, Endpoint::Kind::Unix);
  EXPECT_EQ(Ep.Path, "/tmp/bare.sock");

  ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:9000", Ep).ok());
  EXPECT_EQ(Ep.Transport, Endpoint::Kind::Tcp);
  EXPECT_EQ(Ep.Host, "127.0.0.1");
  EXPECT_EQ(Ep.Port, 9000);
  EXPECT_EQ(Ep.str(), "tcp:127.0.0.1:9000");

  // Port 0 parses (ephemeral; the listener resolves the real port).
  ASSERT_TRUE(parseEndpoint("tcp:localhost:0", Ep).ok());
  EXPECT_EQ(Ep.Port, 0);

  EXPECT_FALSE(parseEndpoint("", Ep).ok());
  EXPECT_FALSE(parseEndpoint("unix:", Ep).ok());
  EXPECT_FALSE(parseEndpoint("tcp:hostonly", Ep).ok());
  EXPECT_FALSE(parseEndpoint("tcp::9000", Ep).ok());
  EXPECT_FALSE(parseEndpoint("tcp:host:", Ep).ok());
  EXPECT_FALSE(parseEndpoint("tcp:host:notaport", Ep).ok());
  EXPECT_FALSE(parseEndpoint("tcp:host:99999", Ep).ok());
  EXPECT_FALSE(parseEndpoint("udp:host:9000", Ep).ok());
  EXPECT_FALSE(parseEndpoint("http://example.com", Ep).ok());
}

//===----------------------------------------------------------------------===//
// BackoffPolicy
//===----------------------------------------------------------------------===//

TEST(TransportTest, BackoffDelaysAreBoundedAndDeterministic) {
  BackoffPolicy Policy; // InitialMs=10, MaxMs=500, Factor=2, Jitter=0.5

  for (unsigned Attempt = 0; Attempt < 16; ++Attempt) {
    double D = Policy.delayMs(Attempt, /*JitterSeed=*/42);
    EXPECT_GE(D, 0.0);
    // Never beyond the cap plus its jitter window.
    EXPECT_LE(D, Policy.MaxMs * (1.0 + Policy.JitterFraction));
    // Pure function: same (attempt, seed) -> same delay.
    EXPECT_EQ(D, Policy.delayMs(Attempt, 42));
  }

  // Attempt 0 stays within the initial window; late attempts reach the
  // cap's neighborhood (>= MaxMs lower jitter bound).
  EXPECT_LE(Policy.delayMs(0, 7),
            Policy.InitialMs * (1.0 + Policy.JitterFraction));
  EXPECT_GE(Policy.delayMs(15, 7),
            Policy.MaxMs * (1.0 - Policy.JitterFraction));

  // Different seeds scatter: among a handful of seeds at the same
  // attempt, at least two distinct delays must appear (the anti-
  // thundering-herd property).
  bool Scattered = false;
  double First = Policy.delayMs(3, 1);
  for (uint64_t Seed = 2; Seed < 8; ++Seed)
    if (Policy.delayMs(3, Seed) != First)
      Scattered = true;
  EXPECT_TRUE(Scattered);

  // Jitter disabled -> exact exponential, capped.
  BackoffPolicy Plain;
  Plain.JitterFraction = 0;
  EXPECT_EQ(Plain.delayMs(0, 1), 10.0);
  EXPECT_EQ(Plain.delayMs(1, 1), 20.0);
  EXPECT_EQ(Plain.delayMs(2, 1), 40.0);
  EXPECT_EQ(Plain.delayMs(20, 1), 500.0);
}

//===----------------------------------------------------------------------===//
// Listener / connect round trips (both transports)
//===----------------------------------------------------------------------===//

void roundTripOver(const Endpoint &Ep) {
  Listener Acceptor;
  ASSERT_TRUE(Acceptor.listen(Ep).ok());
  if (Ep.Transport == Endpoint::Kind::Tcp && Ep.Port == 0)
    EXPECT_NE(Acceptor.endpoint().Port, 0)
        << "ephemeral port must resolve after listen()";

  std::thread Echo([&] {
    int Fd = Acceptor.acceptConnection();
    ASSERT_GE(Fd, 0);
    std::string Pending, Line;
    char Buffer[4096];
    while (!popLine(Pending, Line)) {
      ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
      ASSERT_GT(N, 0);
      Pending.append(Buffer, static_cast<size_t>(N));
    }
    EXPECT_TRUE(sendAll(Fd, "echo:" + Line + "\n"));
    ::close(Fd);
  });

  int Fd = -1;
  ASSERT_TRUE(connectEndpoint(Acceptor.endpoint(), Fd).ok());
  ASSERT_TRUE(sendAll(Fd, "hello over " + Acceptor.endpoint().str() + "\n"));
  std::string Pending, Line;
  char Buffer[4096];
  while (!popLine(Pending, Line)) {
    ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
    ASSERT_GT(N, 0);
    Pending.append(Buffer, static_cast<size_t>(N));
  }
  EXPECT_EQ(Line, "echo:hello over " + Acceptor.endpoint().str());
  ::close(Fd);
  Echo.join();
  Acceptor.close();
  if (Ep.Transport == Endpoint::Kind::Unix)
    EXPECT_NE(::access(Ep.Path.c_str(), F_OK), 0)
        << "close() must unlink the unix socket file";
}

TEST(TransportTest, UnixListenerRoundTrip) {
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint(tempSocketPath(), Ep).ok());
  roundTripOver(Ep);
}

TEST(TransportTest, TcpListenerRoundTripWithEphemeralPort) {
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint("tcp:127.0.0.1:0", Ep).ok());
  roundTripOver(Ep);
}

TEST(TransportTest, ConnectToMissingEndpointFailsCleanly) {
  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint(tempSocketPath(), Ep).ok());
  int Fd = -1;
  EXPECT_FALSE(connectEndpoint(Ep, Fd).ok());
  EXPECT_LT(Fd, 0);
}

//===----------------------------------------------------------------------===//
// EINTR and partial-write discipline (SocketIO)
//===----------------------------------------------------------------------===//

void noopHandler(int) {}

/// Installs \p Handler for SIGUSR1 *without* SA_RESTART, so blocking
/// syscalls genuinely return EINTR (std::signal would mask the bug the
/// suite exists to catch). Restores the old action on destruction.
struct InterruptingSignal {
  struct sigaction Old;
  InterruptingSignal() {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = noopHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = 0; // No SA_RESTART: interrupted calls fail with EINTR.
    sigaction(SIGUSR1, &SA, &Old);
  }
  ~InterruptingSignal() { sigaction(SIGUSR1, &Old, nullptr); }
};

TEST(TransportTest, RecvSomeRetriesAcrossEintr) {
  InterruptingSignal Guard;
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);

  std::atomic<bool> Blocked{false};
  std::atomic<ssize_t> Got{-2};
  std::string Received;
  std::thread Reader([&] {
    char Buffer[256];
    Blocked.store(true);
    // One blocking recv; signals during the block must be invisible.
    ssize_t N = recvSome(Pair[0], Buffer, sizeof(Buffer));
    Got.store(N);
    if (N > 0)
      Received.assign(Buffer, static_cast<size_t>(N));
  });

  while (!Blocked.load())
    std::this_thread::yield();
  // Storm the reader while it blocks in recv().
  for (int I = 0; I < 50; ++I) {
    pthread_kill(Reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(Got.load(), -2) << "reader must still be blocked, not EINTR'd";
  ASSERT_TRUE(sendAll(Pair[1], "payload"));
  Reader.join();
  EXPECT_EQ(Got.load(), 7);
  EXPECT_EQ(Received, "payload");
  ::close(Pair[0]);
  ::close(Pair[1]);
}

TEST(TransportTest, SendAllCompletesPartialWritesUnderTinySndbuf) {
  InterruptingSignal Guard;
  int Pair[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Pair), 0);
  // A minimal send buffer forces send() to accept the payload in many
  // partial writes (the kernel clamps to its floor, still far below the
  // payload).
  int Tiny = 1;
  ASSERT_EQ(::setsockopt(Pair[1], SOL_SOCKET, SO_SNDBUF, &Tiny,
                         sizeof(Tiny)),
            0);

  std::string Payload(4 << 20, '\0');
  for (size_t I = 0; I < Payload.size(); ++I)
    Payload[I] = static_cast<char>('a' + I % 26);

  std::atomic<bool> SendOk{false};
  std::thread Sender([&] { SendOk.store(sendAll(Pair[1], Payload)); });

  // Harass the sender mid-transfer, then drain everything.
  for (int I = 0; I < 50; ++I) {
    pthread_kill(Sender.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string Received;
  char Buffer[65536];
  while (Received.size() < Payload.size()) {
    ssize_t N = recvSome(Pair[0], Buffer, sizeof(Buffer));
    ASSERT_GT(N, 0);
    Received.append(Buffer, static_cast<size_t>(N));
  }
  Sender.join();
  EXPECT_TRUE(SendOk.load());
  EXPECT_EQ(Received, Payload) << "partial writes must not reorder or "
                                  "drop bytes";
  ::close(Pair[0]);
  ::close(Pair[1]);
}

//===----------------------------------------------------------------------===//
// Server framing boundary (both transports)
//===----------------------------------------------------------------------===//

/// Reads one line from \p Fd with the shared framing primitives.
bool readLine(int Fd, std::string &Pending, std::string &Line) {
  char Buffer[65536];
  while (!popLine(Pending, Line)) {
    ssize_t N = recvSome(Fd, Buffer, sizeof(Buffer));
    if (N <= 0)
      return false;
    Pending.append(Buffer, static_cast<size_t>(N));
  }
  return true;
}

/// A ping request padded with an ignored member to exactly \p Bytes
/// (without the trailing newline).
std::string paddedPing(size_t Bytes) {
  const std::string Head = "{\"op\":\"ping\",\"pad\":\"";
  const std::string Tail = "\"}";
  EXPECT_GT(Bytes, Head.size() + Tail.size());
  return Head + std::string(Bytes - Head.size() - Tail.size(), 'x') + Tail;
}

void framingBoundaryOver(const std::string &ListenSpec) {
  ServerOptions Opts;
  Opts.Listen = ListenSpec;
  Opts.Workers = 1;
  Opts.MaxRequestBytes = 4096;
  Server Daemon(Opts);
  ASSERT_TRUE(Daemon.start().ok());
  std::thread Waiter([&] { Daemon.wait(); });

  Endpoint Ep;
  ASSERT_TRUE(parseEndpoint(Daemon.boundAddress(), Ep).ok());

  {
    // Exactly at the limit: the line is accepted and answered.
    int Fd = -1;
    ASSERT_TRUE(connectEndpoint(Ep, Fd).ok());
    ASSERT_TRUE(sendAll(Fd, paddedPing(Opts.MaxRequestBytes) + "\n"));
    std::string Pending, Line;
    ASSERT_TRUE(readLine(Fd, Pending, Line));
    json::ParseResult Parsed = json::parse(Line);
    ASSERT_TRUE(Parsed.Ok) << Line;
    const json::Value *Ok = Parsed.V.get("ok");
    EXPECT_TRUE(Ok && Ok->asBool()) << Line;
    ::close(Fd);
  }
  {
    // One byte over, newline deliberately withheld: the framing layer
    // must reject with a structured error once the body alone exceeds
    // the limit, then close (the stream cannot resynchronize).
    int Fd = -1;
    ASSERT_TRUE(connectEndpoint(Ep, Fd).ok());
    ASSERT_TRUE(sendAll(Fd, paddedPing(Opts.MaxRequestBytes + 1)));
    std::string Pending, Line;
    ASSERT_TRUE(readLine(Fd, Pending, Line));
    json::ParseResult Parsed = json::parse(Line);
    ASSERT_TRUE(Parsed.Ok) << Line;
    const json::Value *Ok = Parsed.V.get("ok");
    ASSERT_TRUE(Ok && !Ok->asBool()) << Line;
    const json::Value *Error = Parsed.V.get("error");
    ASSERT_TRUE(Error && Error->isObject()) << Line;
    EXPECT_EQ(Error->get("code")->asString(), "bad_request");
    // EOF follows: the connection is closed after the rejection.
    std::string Rest;
    EXPECT_FALSE(readLine(Fd, Pending, Rest));
    ::close(Fd);
  }

  Daemon.requestStop();
  Waiter.join();
}

TEST(TransportTest, FramingSizeBoundaryUnix) {
  framingBoundaryOver(tempSocketPath());
}

TEST(TransportTest, FramingSizeBoundaryTcp) {
  framingBoundaryOver("tcp:127.0.0.1:0");
}

//===----------------------------------------------------------------------===//
// Client connect retry (BackoffPolicy integration)
//===----------------------------------------------------------------------===//

TEST(TransportTest, ClientRetriesUntilLateDaemonBinds) {
  std::string Path = tempSocketPath();
  // Bind the listener ~150 ms after the client starts retrying.
  std::thread LateBinder([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    Endpoint Ep;
    ASSERT_TRUE(parseEndpoint(Path, Ep).ok());
    Listener Acceptor;
    ASSERT_TRUE(Acceptor.listen(Ep).ok());
    int Fd = Acceptor.acceptConnection();
    EXPECT_GE(Fd, 0);
    if (Fd >= 0)
      ::close(Fd);
    Acceptor.close();
  });

  Client Conn;
  Status S = Conn.connect(Path, /*RetrySeconds=*/5.0);
  EXPECT_TRUE(S.ok()) << S.message();
  Conn.close();
  LateBinder.join();

  // Without a retry budget, the missing endpoint fails immediately.
  Client NoRetry;
  EXPECT_FALSE(NoRetry.connect(tempSocketPath()).ok());
}

} // namespace
