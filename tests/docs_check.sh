#!/usr/bin/env bash
# Documentation hygiene checks, run by ctest (docs-check) and the CI
# docs-check job:
#
#  1. Every relative markdown link  [text](path)  in every tracked *.md
#     file must resolve to an existing file or directory (anchors and
#     external http(s)/mailto links are skipped).
#  2. docs/PROTOCOL.md must mention every protocol op string accepted by
#     Protocol.cpp and every errc:: error-code literal declared in
#     Protocol.h — the wire protocol's vocabulary may not drift out of
#     its normative document.
#
# usage: docs_check.sh [REPO_ROOT]
set -euo pipefail

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
cd "$ROOT"
fail=0

# --- 1. relative link check over all markdown files --------------------------
while IFS= read -r file; do
  # Pull out every ](target) occurrence; strip titles and anchors.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"           # drop an in-file anchor
    path="${path%% *}"             # drop a "title" suffix
    [[ -z "$path" ]] && continue
    dir=$(dirname "$file")
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "docs-check: BROKEN LINK in $file -> $target"
      fail=1
    fi
  done < <(grep -o '\]([^)]*)' "$file" 2>/dev/null \
             | sed -e 's/^](//' -e 's/)$//')
done < <(find . -name '*.md' -not -path './build*' -not -path './.git/*')

# --- 2. protocol vocabulary must appear in docs/PROTOCOL.md ------------------
PROTO_DOC=docs/PROTOCOL.md
if [[ ! -f "$PROTO_DOC" ]]; then
  echo "docs-check: $PROTO_DOC is missing"
  exit 1
fi

# Ops: the string literals parseRequest() compares the "op" field against.
ops=$(grep -o 'OpName == "[a-z_]*"' src/service/Protocol.cpp \
        | sed 's/.*"\([a-z_]*\)"/\1/' | sort -u)
# Error codes: the errc:: literals declared in Protocol.h.
codes=$(grep -o 'inline constexpr const char \*[A-Za-z]* = "[a-z_]*"' \
          src/service/Protocol.h | sed 's/.*"\([a-z_]*\)"/\1/' | sort -u)

if [[ -z "$ops" || -z "$codes" ]]; then
  echo "docs-check: failed to extract ops/error codes from Protocol sources"
  exit 1
fi

for word in $ops $codes; do
  if ! grep -q "\`$word\`" "$PROTO_DOC"; then
    echo "docs-check: $PROTO_DOC does not mention \`$word\`"
    fail=1
  fi
done

if [[ "$fail" -ne 0 ]]; then
  echo "docs-check: FAILED"
  exit 1
fi
echo "docs-check: all links resolve; PROTOCOL.md covers $(echo $ops | wc -w) ops and $(echo $codes | wc -w) error codes"
