#!/usr/bin/env bash
# End-to-end smoke of the fleet tier with the real binaries: boot two
# qlosured daemons (one unix-domain, one TCP on an ephemeral port) behind
# qlosure-router, route a QUEKO circuit through the router, assert the
# repeated request is served from the owning shard's cache (stickiness),
# kill one daemon with SIGKILL and assert the fleet keeps serving, and
# scrape the aggregated Prometheus /metrics surface both over the
# protocol (`metrics` op) and over the router's plain-HTTP listener.
# Run by ctest (fleet-smoke) and the CI fleet-smoke job.
#
# usage: fleet_smoke.sh BIN_DIR QUEKO_QASM
set -euo pipefail

BIN_DIR=${1:?usage: fleet_smoke.sh BIN_DIR QUEKO_QASM}
QASM=${2:?usage: fleet_smoke.sh BIN_DIR QUEKO_QASM}
SOCK1="/tmp/qlosured-fleet-$$-1.sock"
ROUTER_SOCK="/tmp/qlosure-router-fleet-$$.sock"
D2_LOG="/tmp/qlosured-fleet-$$-2.log"
ROUTER_LOG="/tmp/qlosure-router-fleet-$$.log"
RESP="/tmp/qlosure-fleet-$$.json"
METRICS="/tmp/qlosure-fleet-$$.metrics"
STORE1="/tmp/qlosure-fleet-$$-1.qstore"
STORE2="/tmp/qlosure-fleet-$$-2.qstore"

cleanup() {
  [[ -n "${ROUTER_PID:-}" ]] && kill "$ROUTER_PID" 2>/dev/null || true
  [[ -n "${DAEMON1_PID:-}" ]] && kill "$DAEMON1_PID" 2>/dev/null || true
  [[ -n "${DAEMON2_PID:-}" ]] && kill "$DAEMON2_PID" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -f "$SOCK1" "$ROUTER_SOCK" "$D2_LOG" "$ROUTER_LOG" "$RESP" "$METRICS" \
    "$STORE1" "$STORE1.compact" "$STORE2" "$STORE2.compact"
}
trap cleanup EXIT

# Waits until a logfile announces a bound address, then echoes it.
bound_address() { # logfile daemon-name
  local log=$1 name=$2 addr=""
  for _ in $(seq 1 100); do
    addr=$(sed -n "s/^$name: listening on \([^ ]*\).*/\1/p" "$log" | head -1)
    [[ -n "$addr" ]] && { echo "$addr"; return 0; }
    sleep 0.1
  done
  echo "fleet-smoke: $name never bound (log: $(cat "$log"))" >&2
  return 1
}

# One unix-domain shard, one TCP shard on an ephemeral port: the fleet
# must mix transports freely behind one router. Sticky sharding means
# each shard owns its keys, so the durable stores are per daemon.
"$BIN_DIR/qlosured" --listen "$SOCK1" --store "$STORE1" --workers 2 &
DAEMON1_PID=$!
"$BIN_DIR/qlosured" --listen tcp:127.0.0.1:0 --store "$STORE2" \
  --workers 2 2> "$D2_LOG" &
DAEMON2_PID=$!
SHARD2=$(bound_address "$D2_LOG" qlosured)

"$BIN_DIR/qlosure-router" --listen "$ROUTER_SOCK" \
  --shard "$SOCK1" --shard "$SHARD2" \
  --metrics tcp:127.0.0.1:0 --health-interval-ms 100 2> "$ROUTER_LOG" &
ROUTER_PID=$!
for _ in $(seq 1 100); do
  grep -q 'metrics on' "$ROUTER_LOG" && break
  sleep 0.1
done
METRICS_ADDR=$(sed -n 's/^qlosure-router: metrics on //p' "$ROUTER_LOG" | head -1)
[[ -n "$METRICS_ADDR" ]]

# Route through the router; the response must verify like a direct route.
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" --connect-timeout 10 \
  route --backend aspen16 --stats-only "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
grep -q '"cache_hit":false' "$RESP"
echo "fleet-smoke: routed through the router (cold)"

# Shard stickiness: the identical request must land on the same shard and
# be served from its result cache.
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" \
  route --backend aspen16 --stats-only --expect-cache-hit "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
echo "fleet-smoke: repeated request hit the owning shard's cache"

# A traced route through the router must return the merged span tree:
# the router's own spans (ring_lookup, upstream_wait) plus the daemon's
# nested phases, and the depth-0 spans — sequential phases of one
# request — must sum to no more than the client-observed wall clock.
# A different mapper keeps this request out of the result cache, so the
# routing_loop phase actually runs.
START_NS=$(date +%s%N)
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" \
  route --mapper sabre --backend aspen16 --stats-only --trace "$QASM" \
  > "$RESP" 2>/dev/null
WALL_US=$(( ($(date +%s%N) - START_NS) / 1000 ))
grep -q '"trace_id":"' "$RESP"
grep -q '"name":"ring_lookup"' "$RESP"
grep -q '"name":"upstream_wait"' "$RESP"
grep -q '"name":"routing_loop"' "$RESP"
DEPTH0_US=0
DEPTH0_SEEN=0
for DUR in $(tr '{' '\n' < "$RESP" |
             sed -n 's/.*"dur_us":\([0-9]*\),"depth":0.*/\1/p'); do
  DEPTH0_US=$((DEPTH0_US + DUR))
  DEPTH0_SEEN=1
done
[[ "$DEPTH0_SEEN" -eq 1 && "$DEPTH0_US" -le "$WALL_US" ]] || {
  echo "fleet-smoke: depth-0 span total ${DEPTH0_US}us exceeds wall clock ${WALL_US}us" >&2
  exit 1
}
echo "fleet-smoke: traced route returned merged spans (depth-0 ${DEPTH0_US}us <= wall ${WALL_US}us)"

# The aggregated stats document must carry the router section with both
# shards up, and an aggregate summing the shard counters.
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" stats > "$RESP" 2>/dev/null
grep -q '"shards_total":2' "$RESP"
grep -q '"shards_up":2' "$RESP"
grep -q '"aggregate"' "$RESP"
echo "fleet-smoke: stats aggregate covers both shards"

# /metrics over the protocol: valid Prometheus text exposition with the
# per-shard up gauges and aggregated counters.
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" metrics > "$METRICS" 2>/dev/null
grep -q '^# TYPE qlosure_router_requests gauge' "$METRICS"
grep -q '^qlosure_shard_up{shard="0"' "$METRICS"
grep -q '^qlosure_shard_up{shard="1"' "$METRICS"
grep -Eq '^qlosure_aggregate_server_route_requests [0-9]' "$METRICS"
# The per-op latency histograms aggregate across shards into classic
# Prometheus histogram series.
grep -q '^# TYPE qlosure_aggregate_latency_route histogram' "$METRICS"
grep -Eq '^qlosure_aggregate_latency_route_bucket\{le="[^"]*"\} [0-9]' "$METRICS"
grep -Eq '^qlosure_aggregate_latency_route_count [0-9]' "$METRICS"
echo "fleet-smoke: protocol metrics op serves Prometheus text (incl. histograms)"

# /metrics over plain HTTP (the scrape path): same exposition, reachable
# with nothing but a TCP socket.
HTTP_HOST=${METRICS_ADDR#tcp:}; HTTP_PORT=${HTTP_HOST##*:}; HTTP_HOST=${HTTP_HOST%:*}
exec 9<>"/dev/tcp/$HTTP_HOST/$HTTP_PORT"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&9
cat <&9 > "$METRICS"
exec 9<&- 9>&-
grep -q '200 OK' "$METRICS"
grep -q 'text/plain' "$METRICS"
grep -q '^qlosure_shard_up{shard="0"' "$METRICS"
echo "fleet-smoke: HTTP /metrics scrape succeeded"

# Kill one daemon outright (no goodbye): after the health monitor notices,
# every request must still be served by the surviving shard.
kill -9 "$DAEMON2_PID"
wait "$DAEMON2_PID" 2>/dev/null || true
DAEMON2_PID=""
for _ in $(seq 1 100); do
  "$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" stats > "$RESP" 2>/dev/null
  grep -q '"shards_up":1' "$RESP" && break
  sleep 0.1
done
grep -q '"shards_up":1' "$RESP"
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" \
  route --backend aspen16 --stats-only "$QASM" > "$RESP"
grep -q '"verified":true' "$RESP"
echo "fleet-smoke: degraded fleet (1/2 shards) still serves"

# Graceful protocol shutdown stops the router only; the surviving daemon
# is not owned by it and answers a direct ping afterwards.
"$BIN_DIR/qlosure-client" --connect "$ROUTER_SOCK" shutdown > /dev/null
wait "$ROUTER_PID"
ROUTER_PID=""
"$BIN_DIR/qlosure-client" --connect "$SOCK1" ping > /dev/null
"$BIN_DIR/qlosure-client" --connect "$SOCK1" shutdown > /dev/null
wait "$DAEMON1_PID"
DAEMON1_PID=""
echo "fleet-smoke: router shut down cleanly; shards outlive it"

# Durable store in the fleet: the degraded-fleet route above was served
# by daemon 1 and appended to its per-shard store, so a fresh daemon
# restarted on that store must answer the same circuit warm.
"$BIN_DIR/qlosured" --listen "$SOCK1" --store "$STORE1" --workers 2 &
DAEMON1_PID=$!
"$BIN_DIR/qlosure-client" --connect "$SOCK1" --connect-timeout 10 \
  route --backend aspen16 --stats-only --expect-cache-hit "$QASM" > "$RESP"
grep -q '"result_cache_hit":true' "$RESP"
"$BIN_DIR/qlosure-client" --connect "$SOCK1" shutdown > /dev/null
wait "$DAEMON1_PID"
DAEMON1_PID=""
echo "fleet-smoke: shard's durable store served the circuit warm after restart"
