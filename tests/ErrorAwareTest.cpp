//===- tests/ErrorAwareTest.cpp - error-aware extension tests ---------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Qlosure.h"
#include "route/Fidelity.h"
#include "route/Verify.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace qlosure;

TEST(ErrorModelTest, EdgeErrorsDefaultToZero) {
  CouplingGraph G = makeLine(4);
  EXPECT_FALSE(G.hasErrorModel());
  EXPECT_DOUBLE_EQ(G.edgeError(0, 1), 0.0);
}

TEST(ErrorModelTest, SetAndReadSymmetric) {
  CouplingGraph G = makeLine(4);
  G.setEdgeError(1, 2, 0.02);
  EXPECT_DOUBLE_EQ(G.edgeError(1, 2), 0.02);
  EXPECT_DOUBLE_EQ(G.edgeError(2, 1), 0.02);
  EXPECT_TRUE(G.hasErrorModel());
}

TEST(ErrorModelTest, SyntheticModelCoversAllEdges) {
  CouplingGraph G = makeSherbrooke();
  applySyntheticErrorModel(G, 5);
  for (auto [A, B] : G.edges()) {
    double Rate = G.edgeError(A, B);
    EXPECT_GE(Rate, 0.002);
    EXPECT_LE(Rate, 0.03);
  }
  EXPECT_TRUE(G.hasWeightedDistances());
}

TEST(ErrorModelTest, SyntheticModelDeterministicPerSeed) {
  CouplingGraph A = makeAnkaa3();
  CouplingGraph B = makeAnkaa3();
  applySyntheticErrorModel(A, 9);
  applySyntheticErrorModel(B, 9);
  for (auto [X, Y] : A.edges())
    EXPECT_DOUBLE_EQ(A.edgeError(X, Y), B.edgeError(X, Y));
}

TEST(ErrorModelTest, WeightedDistanceBoundsHopDistance) {
  CouplingGraph G = makeGrid(4, 4);
  applySyntheticErrorModel(G, 11);
  // Weighted distance >= hop distance (every edge costs at least 1) and
  // weighted(A, A) == 0.
  for (unsigned A = 0; A < G.numQubits(); A += 3)
    for (unsigned B = 0; B < G.numQubits(); B += 5) {
      EXPECT_GE(G.weightedDistance(A, B) + 1e-9,
                static_cast<double>(G.distance(A, B)));
      EXPECT_DOUBLE_EQ(G.weightedDistance(A, A), 0.0);
    }
}

TEST(ErrorModelTest, WeightedDistanceAvoidsNoisyEdge) {
  // Square with one very noisy edge: the weighted metric must route the
  // long way around.
  CouplingGraph G(4, "square");
  G.addEdge(0, 1);
  G.addEdge(1, 2);
  G.addEdge(2, 3);
  G.addEdge(3, 0);
  G.computeDistances();
  G.setEdgeError(0, 1, 0.5); // Terrible coupler.
  G.computeWeightedDistances(/*Penalty=*/25.0);
  // Hop distance 0->1 is 1, but the weighted metric prefers 0-3-2-1 = 3.
  EXPECT_EQ(G.distance(0, 1), 1u);
  EXPECT_NEAR(G.weightedDistance(0, 1), 3.0, 0.5);
}

TEST(FidelityTest, PerfectHardwareGivesProbabilityOne) {
  CouplingGraph G = makeLine(3);
  Circuit C(3);
  C.addCx(0, 1);
  C.addCx(1, 2);
  EXPECT_DOUBLE_EQ(estimateSuccessProbability(C, G), 1.0);
}

TEST(FidelityTest, ProductOverGateApplications) {
  CouplingGraph G = makeLine(3);
  G.setEdgeError(0, 1, 0.1);
  Circuit C(3);
  C.addCx(0, 1);
  C.addCx(0, 1);
  EXPECT_NEAR(estimateSuccessProbability(C, G), 0.9 * 0.9, 1e-12);
}

TEST(FidelityTest, SwapChargedAsThreeCx) {
  CouplingGraph G = makeLine(2);
  G.setEdgeError(0, 1, 0.1);
  Circuit C(2);
  C.addSwap(0, 1);
  EXPECT_NEAR(estimateSuccessProbability(C, G), 0.9 * 0.9 * 0.9, 1e-12);
}

TEST(ErrorAwareRoutingTest, StillVerifies) {
  CouplingGraph Hw = makeAnkaa3();
  applySyntheticErrorModel(Hw, 13);
  Circuit C = makeQft(16);
  QlosureOptions Opts;
  Opts.ErrorAware = true;
  QlosureRouter Router(Opts);
  RoutingResult R = Router.routeWithIdentity(C, Hw);
  EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
}

TEST(ErrorAwareRoutingTest, ImprovesSuccessProbabilityOnAverage) {
  CouplingGraph Hw = makeGrid(5, 5);
  // A harsh, polarized calibration makes the signal unambiguous.
  applySyntheticErrorModel(Hw, 17, 0.001, 0.08);
  double LogGainSum = 0;
  for (unsigned N : {10u, 14u, 18u}) {
    Circuit C = makeQft(N);
    QlosureOptions Plain;
    QlosureRouter PlainRouter(Plain);
    QlosureOptions Aware;
    Aware.ErrorAware = true;
    QlosureRouter AwareRouter(Aware);
    double PPlain = estimateSuccessProbability(
        PlainRouter.routeWithIdentity(C, Hw).Routed, Hw);
    double PAware = estimateSuccessProbability(
        AwareRouter.routeWithIdentity(C, Hw).Routed, Hw);
    LogGainSum += std::log(PAware / PPlain);
  }
  // Averaged across sizes, awareness must not hurt fidelity.
  EXPECT_GT(LogGainSum, -0.05);
}

TEST(ErrorAwareRoutingTest, FallsBackWithoutModel) {
  // ErrorAware with no installed model must behave like the plain router.
  CouplingGraph Hw = makeLine(6);
  Circuit C = makeQft(6);
  QlosureOptions Aware;
  Aware.ErrorAware = true;
  QlosureRouter AwareRouter(Aware);
  QlosureRouter PlainRouter;
  RoutingResult A = AwareRouter.routeWithIdentity(C, Hw);
  RoutingResult B = PlainRouter.routeWithIdentity(C, Hw);
  EXPECT_EQ(A.NumSwaps, B.NumSwaps);
}
