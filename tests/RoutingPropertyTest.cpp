//===- tests/RoutingPropertyTest.cpp - randomized routing properties --------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based routing tests on seeded random circuits and topologies:
/// every produced routing verifies, obeys the structural invariants, and
/// re-routing an already hardware-compatible circuit is the identity.
///
//===----------------------------------------------------------------------===//

#include "baselines/RouterRegistry.h"
#include "core/Qlosure.h"
#include "route/InitialMapping.h"
#include "route/Verify.h"
#include "support/Random.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

/// A random unitary circuit over \p NumQubits with mixed 1Q/2Q gates.
Circuit randomCircuit(unsigned NumQubits, size_t NumGates, Rng &Generator) {
  Circuit C(NumQubits, "random");
  const GateKind OneQ[] = {GateKind::H, GateKind::T, GateKind::X,
                           GateKind::RZ};
  for (size_t I = 0; I < NumGates; ++I) {
    if (Generator.nextBernoulli(0.6)) {
      int32_t A = static_cast<int32_t>(Generator.nextBounded(NumQubits));
      int32_t B;
      do {
        B = static_cast<int32_t>(Generator.nextBounded(NumQubits));
      } while (B == A);
      C.addCx(A, B);
    } else {
      GateKind Kind = OneQ[Generator.nextBounded(4)];
      Gate G(Kind, static_cast<int32_t>(Generator.nextBounded(NumQubits)));
      if (Kind == GateKind::RZ)
        G.Params[0] = Generator.nextDouble();
      C.addGate(G);
    }
  }
  return C;
}

/// A random connected topology: a spanning random tree plus extra edges.
CouplingGraph randomTopology(unsigned NumQubits, Rng &Generator) {
  CouplingGraph G(NumQubits, "randomtopo");
  for (unsigned Q = 1; Q < NumQubits; ++Q)
    G.addEdge(Q, static_cast<unsigned>(Generator.nextBounded(Q)));
  unsigned Extra = NumQubits / 2;
  for (unsigned I = 0; I < Extra; ++I) {
    unsigned A = static_cast<unsigned>(Generator.nextBounded(NumQubits));
    unsigned B = static_cast<unsigned>(Generator.nextBounded(NumQubits));
    if (A != B)
      G.addEdge(A, B);
  }
  G.computeDistances();
  return G;
}

} // namespace

class RoutingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoutingPropertyTest, AllMappersVerifyOnRandomInputs) {
  Rng Generator(GetParam());
  unsigned NumQubits = 6 + static_cast<unsigned>(Generator.nextBounded(8));
  CouplingGraph Hw = randomTopology(NumQubits, Generator);
  Circuit C = randomCircuit(NumQubits, 40 + Generator.nextBounded(80),
                            Generator);
  for (const std::string &Name : paperRouterNames()) {
    auto Router = makeRouterByName(Name);
    RoutingResult R = Router->routeWithIdentity(C, Hw);
    VerifyResult V = verifyRouting(C, Hw, R);
    EXPECT_TRUE(V.Ok) << Name << " seed=" << GetParam() << ": "
                      << V.Message;
    EXPECT_EQ(R.Routed.size(), C.size() + R.NumSwaps) << Name;
    EXPECT_GE(R.Routed.depth(), C.depth()) << Name;
  }
}

TEST_P(RoutingPropertyTest, RoutedCircuitIsFixpoint) {
  // Re-routing the physical circuit on the same device from the identity
  // placement must need zero additional SWAPs.
  Rng Generator(GetParam() * 1337 + 11);
  CouplingGraph Hw = makeGrid(3, 4);
  Circuit C = randomCircuit(10, 60, Generator);
  QlosureRouter Router;
  RoutingResult First = Router.routeWithIdentity(C, Hw);
  RoutingResult Second = Router.routeWithIdentity(First.Routed, Hw);
  EXPECT_EQ(Second.NumSwaps, 0u);
  EXPECT_EQ(Second.Routed.size(), First.Routed.size());
}

TEST_P(RoutingPropertyTest, SwapCountInvariantUnderQubitRelabeling) {
  // Routing quality from the identity placement is not invariant under
  // relabeling in general, but correctness must be: the relabeled
  // circuit's routing still verifies and executes the same gate multiset.
  Rng Generator(GetParam() * 77 + 5);
  CouplingGraph Hw = makeRing(9);
  Circuit C = randomCircuit(9, 50, Generator);
  std::vector<int32_t> Perm(9);
  for (int32_t I = 0; I < 9; ++I)
    Perm[static_cast<size_t>(I)] = I;
  Rng Shuffler(GetParam());
  Shuffler.shuffle(Perm);
  Circuit Relabeled = C.withMappedQubits(
      [&Perm](int32_t Q) { return Perm[static_cast<size_t>(Q)]; });
  QlosureRouter Router;
  RoutingResult R = Router.routeWithIdentity(Relabeled, Hw);
  EXPECT_TRUE(verifyRouting(Relabeled, Hw, R).Ok);
}

TEST_P(RoutingPropertyTest, BidirectionalPlacementNeverInvalid) {
  Rng Generator(GetParam() * 13 + 2);
  CouplingGraph Hw = makeKingsGrid(3, 3);
  Circuit C = randomCircuit(9, 70, Generator);
  QlosureRouter Router;
  QubitMapping Initial = deriveBidirectionalMapping(Router, C, Hw);
  Initial.verifyConsistency();
  RoutingResult R = Router.route(C, Hw, Initial);
  EXPECT_TRUE(verifyRouting(C, Hw, R).Ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

//===----------------------------------------------------------------------===//
// End-to-end: QASM in, QASM out
//===----------------------------------------------------------------------===//

#include "qasm/Importer.h"
#include "qasm/Printer.h"

TEST(EndToEndTest, QasmRoundTripThroughRouting) {
  const char *Source = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg a[3];
    qreg b[3];
    h a;
    cx a, b;
    ccx a[0], a[1], b[2];
    rz(pi/8) b[1];
    barrier a;
    measure a[0] -> a[0];
  )";
  // Note: measure target reuses the register name; importer only needs the
  // quantum side.
  auto Imported = qasm::importQasm(Source, "e2e");
  ASSERT_TRUE(Imported.succeeded()) << Imported.Error;
  Circuit Logical =
      Imported.Circ->withoutNonUnitaries().decomposeThreeQubitGates();
  CouplingGraph Hw = makeAspen16();
  QlosureRouter Router;
  RoutingResult R = Router.routeWithIdentity(Logical, Hw);
  ASSERT_TRUE(verifyRouting(Logical, Hw, R).Ok);

  // The routed artifact must reparse and keep its metrics.
  std::string Emitted = qasm::printQasm(R.Routed);
  auto Reimported = qasm::importQasm(Emitted, "e2e-routed");
  ASSERT_TRUE(Reimported.succeeded()) << Reimported.Error;
  EXPECT_EQ(Reimported.Circ->size(), R.Routed.size());
  EXPECT_EQ(Reimported.Circ->depth(), R.Routed.depth());
  EXPECT_EQ(Reimported.Circ->numSwapGates(), R.Routed.numSwapGates());
}

TEST(EndToEndTest, SpotlightCircuitsRouteOnBothPaperBackends) {
  // A slow-ish smoke test of the exact paper pipeline on one mid-size
  // circuit per family group.
  for (const char *Backend : {"sherbrooke", "ankaa3"}) {
    CouplingGraph Hw = makeBackendByName(Backend);
    Circuit C = makeQft(24);
    for (const std::string &Name : paperRouterNames()) {
      auto Router = makeRouterByName(Name);
      RoutingResult R = Router->routeWithIdentity(C, Hw);
      EXPECT_TRUE(verifyRouting(C, Hw, R).Ok)
          << Name << " on " << Backend;
    }
  }
}
