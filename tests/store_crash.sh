#!/usr/bin/env bash
# Crash/corruption harness for the durable result store: boot qlosured
# with --store, route a circuit, SIGKILL the daemon mid-route of a deep
# circuit, restart on the same store file and demand a byte-identical
# warm hit for the first circuit; then corrupt the store with dd and
# demand the daemon recovers (skips the bad record, counts it in
# store.corrupt_skipped, re-routes successfully) — never a crash. Run by
# ctest (store-crash) and the CI store-crash job.
#
# usage: store_crash.sh BIN_DIR QUEKO_QASM
set -euo pipefail

BIN_DIR=${1:?usage: store_crash.sh BIN_DIR QUEKO_QASM}
QASM=${2:?usage: store_crash.sh BIN_DIR QUEKO_QASM}
SOCK="/tmp/qlosured-store-$$.sock"
STORE="/tmp/qlosured-store-$$.qstore"
COLD="/tmp/qlosured-store-$$-cold.json"
WARM="/tmp/qlosured-store-$$-warm.json"
NORM="/tmp/qlosured-store-$$-norm.json"
STATS="/tmp/qlosured-store-$$-stats.json"
DEEP="/tmp/qlosured-store-$$-deep.qasm"

cleanup() {
  [[ -n "${DAEMON_PID:-}" ]] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -f "$SOCK" "$STORE" "$STORE.compact" "$COLD" "$WARM" "$NORM" \
    "$STATS" "$DEEP"
}
trap cleanup EXIT

boot() {
  "$BIN_DIR/qlosured" --socket "$SOCK" --store "$STORE" --workers 2 &
  DAEMON_PID=$!
}

boot

# Cold route with the full response (stats + routed QASM) so the warm
# replay after the crash can be compared byte for byte.
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  --id store-probe route --backend aspen16 "$QASM" > "$COLD"
grep -q '"verified":true' "$COLD"
grep -q '"result_cache_hit":false' "$COLD"
echo "store-crash: cold route served and appended to the store"

# SIGKILL the daemon while a deep route is in flight: the store append
# for the cold route above is already in the page cache (a single
# write(2) per record), so it must survive even though the batched
# fsync may not have happened yet. The in-flight route simply dies with
# its process — the recovery scan must treat any torn tail as absent.
"$BIN_DIR/qlosure-queko" --device kings9x9 --depth 1200 --seed 7 \
  --output "$DEEP" 2> /dev/null
"$BIN_DIR/qlosure-client" --socket "$SOCK" route --mapper qmap \
  --backend sherbrooke2x --stats-only "$DEEP" > /dev/null 2>&1 &
CLIENT_PID=$!
sleep 1
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""
wait "$CLIENT_PID" 2>/dev/null || true
rm -f "$SOCK"
echo "store-crash: daemon SIGKILLed mid-route"

# Restart on the same store: the first circuit must be a warm hit
# (exit 4 from --expect-cache-hit otherwise) and, apart from the three
# cache-hit flags flipping to true, the response must be byte-identical
# to the cold one — the stats travel with the stored record.
boot
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  --id store-probe --expect-cache-hit route --backend aspen16 "$QASM" \
  > "$WARM"
grep -q '"result_cache_hit":true' "$WARM"
sed -e 's/"cache_hit":false/"cache_hit":true/' \
    -e 's/"result_cache_hit":false/"result_cache_hit":true/' \
    "$COLD" > "$NORM"
diff "$NORM" "$WARM"
"$BIN_DIR/qlosure-client" --socket "$SOCK" stats > "$STATS"
grep -Eq '"records":[1-9]' "$STATS"
grep -q '"corrupt_skipped":0' "$STATS"
echo "store-crash: warm hit after crash is byte-identical to the cold route"

# Corruption: clean shutdown, overwrite a run of bytes inside the first
# record's payload, restart. The daemon must come up, count the skipped
# record, and serve the circuit again by re-routing it (a miss now).
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
dd if=/dev/zero of="$STORE" bs=1 seek=64 count=200 conv=notrunc 2> /dev/null
boot
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  --id store-probe route --backend aspen16 --stats-only "$QASM" > "$WARM"
grep -q '"verified":true' "$WARM"
grep -q '"result_cache_hit":false' "$WARM"
"$BIN_DIR/qlosure-client" --socket "$SOCK" stats > "$STATS"
grep -Eq '"corrupt_skipped":[1-9]' "$STATS"
echo "store-crash: corrupt record skipped and counted; circuit re-routed"

# And the re-route must have healed the store: one more restart, warm.
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
boot
"$BIN_DIR/qlosure-client" --socket "$SOCK" --connect-timeout 10 \
  --id store-probe --expect-cache-hit route --backend aspen16 --stats-only \
  "$QASM" > /dev/null
"$BIN_DIR/qlosure-client" --socket "$SOCK" shutdown > /dev/null
wait "$DAEMON_PID"
DAEMON_PID=""
echo "store-crash: re-route healed the store; warm again after restart"
