//===- tests/SupportTest.cpp - support library tests ---------------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/DynamicBitset.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>

#include <set>

using namespace qlosure;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Matches = 0;
  for (int I = 0; I < 64; ++I)
    Matches += A.next() == B.next();
  EXPECT_LT(Matches, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.nextBounded(17), 17u);
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.nextBounded(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(11);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng R(13);
  for (int I = 0; I < 1000; ++I) {
    double V = R.nextDouble();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng R(17);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.nextBernoulli(0.0));
    EXPECT_TRUE(R.nextBernoulli(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng R(19);
  std::vector<int> V{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> Original = V;
  R.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Original.begin(),
                                              Original.end());
  EXPECT_EQ(A, B);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng R(23);
  uint64_t First = R.next();
  R.next();
  R.reseed(23);
  EXPECT_EQ(R.next(), First);
}

//===----------------------------------------------------------------------===//
// DynamicBitset
//===----------------------------------------------------------------------===//

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset B(100);
  EXPECT_FALSE(B.test(37));
  B.set(37);
  EXPECT_TRUE(B.test(37));
  B.reset(37);
  EXPECT_FALSE(B.test(37));
}

TEST(DynamicBitsetTest, CountAndAny) {
  DynamicBitset B(130);
  EXPECT_EQ(B.count(), 0u);
  EXPECT_FALSE(B.any());
  B.set(0);
  B.set(64);
  B.set(129);
  EXPECT_EQ(B.count(), 3u);
  EXPECT_TRUE(B.any());
}

TEST(DynamicBitsetTest, SetAllRespectsSize) {
  DynamicBitset B(70);
  B.setAll();
  EXPECT_EQ(B.count(), 70u);
}

TEST(DynamicBitsetTest, OrAssign) {
  DynamicBitset A(64), B(64);
  A.set(1);
  B.set(2);
  A |= B;
  EXPECT_TRUE(A.test(1));
  EXPECT_TRUE(A.test(2));
  EXPECT_EQ(A.count(), 2u);
}

TEST(DynamicBitsetTest, AndAssign) {
  DynamicBitset A(64), B(64);
  A.set(1);
  A.set(2);
  B.set(2);
  B.set(3);
  A &= B;
  EXPECT_EQ(A.count(), 1u);
  EXPECT_TRUE(A.test(2));
}

TEST(DynamicBitsetTest, Intersects) {
  DynamicBitset A(200), B(200);
  A.set(150);
  EXPECT_FALSE(A.intersects(B));
  B.set(150);
  EXPECT_TRUE(A.intersects(B));
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset B(200);
  EXPECT_EQ(B.findFirst(), 200u);
  B.set(5);
  B.set(66);
  B.set(199);
  EXPECT_EQ(B.findFirst(), 5u);
  EXPECT_EQ(B.findNext(5), 66u);
  EXPECT_EQ(B.findNext(66), 199u);
  EXPECT_EQ(B.findNext(199), 200u);
}

TEST(DynamicBitsetTest, ForEachSetBitInOrder) {
  DynamicBitset B(100);
  B.set(3);
  B.set(64);
  B.set(99);
  std::vector<size_t> Bits;
  B.forEachSetBit([&Bits](size_t I) { Bits.push_back(I); });
  EXPECT_EQ(Bits, (std::vector<size_t>{3, 64, 99}));
}

TEST(DynamicBitsetTest, ResizeClearsNewBits) {
  DynamicBitset B(10);
  B.set(9);
  B.resize(80);
  EXPECT_TRUE(B.test(9));
  for (size_t I = 10; I < 80; ++I)
    EXPECT_FALSE(B.test(I));
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometricMean({4, 9}), 6.0);
}

TEST(StatisticsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
}

TEST(StatisticsTest, Stddev) {
  EXPECT_DOUBLE_EQ(stddev({2, 2, 2}), 0.0);
  // Sample (N-1) estimator: {1, 3} has variance ((1)^2 + (1)^2) / 1 = 2.
  EXPECT_NEAR(stddev({1, 3}), std::sqrt(2.0), 1e-12);
  // {2, 4, 4, 4, 5, 5, 7, 9}: sum of squared deviations = 32, N-1 = 7.
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), std::sqrt(32.0 / 7.0),
              1e-12);
  // Degenerate sizes stay 0.
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({42.0}), 0.0);
}

TEST(StatisticsTest, MinMax) {
  EXPECT_DOUBLE_EQ(minOf({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(maxOf({3, 1, 2}), 3.0);
}

TEST(StatisticsTest, RunningStat) {
  RunningStat S;
  S.add(2);
  S.add(4);
  S.add(9);
  EXPECT_EQ(S.count(), 3u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 9.0);
}

//===----------------------------------------------------------------------===//
// StringUtils / Table
//===----------------------------------------------------------------------===//

TEST(StringUtilsTest, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
}

TEST(StringUtilsTest, SplitKeepsEmptyFields) {
  auto Fields = splitString("a,,b", ',');
  ASSERT_EQ(Fields.size(), 3u);
  EXPECT_EQ(Fields[1], "");
}

TEST(StringUtilsTest, Trim) {
  EXPECT_EQ(trimString("  x y \t\n"), "x y");
  EXPECT_EQ(trimString("   "), "");
}

TEST(StringUtilsTest, StartsWith) {
  EXPECT_TRUE(startsWith("queko-bss", "queko"));
  EXPECT_FALSE(startsWith("qu", "queko"));
}

TEST(TableTest, RendersAlignedColumns) {
  Table T({"Mapper", "Swaps"});
  T.addRow({"SABRE", "120"});
  T.addRow({"Qlosure", "95"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("| Mapper "), std::string::npos);
  EXPECT_NE(Out.find("|   120 |"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, SeparatorRendersRule) {
  Table T({"A"});
  T.addRow({"1"});
  T.addSeparator();
  T.addRow({"2"});
  std::string Out = T.render();
  // Header rule + separator + bottom rule + top = at least 4 rules.
  size_t Count = 0, Pos = 0;
  while ((Pos = Out.find("+---", Pos)) != std::string::npos) {
    ++Count;
    ++Pos;
  }
  EXPECT_GE(Count, 4u);
}
