//===- tests/BatchRunnerTest.cpp - parallel batch engine tests --------------------===//
//
// Part of the Qlosure project. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "eval/BatchRunner.h"

#include "baselines/RouterRegistry.h"
#include "topology/Backends.h"
#include "workloads/QasmBench.h"

#include <gtest/gtest.h>

using namespace qlosure;

namespace {

/// Full field-by-field equality, so "identical" means byte-identical
/// aggregation, not merely matching headline numbers.
void expectSameRecord(const RunRecord &A, const RunRecord &B) {
  EXPECT_EQ(A.Mapper, B.Mapper);
  EXPECT_EQ(A.Backend, B.Backend);
  EXPECT_EQ(A.Workload, B.Workload);
  EXPECT_EQ(A.CircuitQubits, B.CircuitQubits);
  EXPECT_EQ(A.QuantumOps, B.QuantumOps);
  EXPECT_EQ(A.TwoQubitGates, B.TwoQubitGates);
  EXPECT_EQ(A.BaselineDepth, B.BaselineDepth);
  EXPECT_EQ(A.RoutedDepth, B.RoutedDepth);
  EXPECT_EQ(A.Swaps, B.Swaps);
  EXPECT_EQ(A.TimedOut, B.TimedOut);
  EXPECT_EQ(A.Verified, B.Verified);
  EXPECT_EQ(A.Failed, B.Failed);
  EXPECT_EQ(A.Error, B.Error);
}

} // namespace

TEST(BatchRunnerTest, EmptyBatchYieldsNoRecords) {
  EXPECT_TRUE(runBatch({}, 4).empty());
}

TEST(BatchRunnerTest, EffectiveThreadsClampsToJobsAndFloorsAtOne) {
  BatchOptions Auto; // Threads = 0 -> hardware concurrency, at least 1.
  EXPECT_GE(BatchRunner(Auto).effectiveThreads(100), 1u);
  BatchOptions Eight;
  Eight.Threads = 8;
  EXPECT_EQ(BatchRunner(Eight).effectiveThreads(3), 3u);
  EXPECT_EQ(BatchRunner(Eight).effectiveThreads(0), 1u);
}

TEST(BatchRunnerTest, ParallelMatchesSerialByteForByte) {
  CouplingGraph Hw = makeAspen16();
  std::vector<Circuit> Circuits;
  Circuits.push_back(makeQft(8));
  Circuits.push_back(makeGhz(12));
  Circuits.push_back(makeCat(10));

  std::vector<RoutingContext> Contexts;
  Contexts.reserve(Circuits.size());
  for (const Circuit &C : Circuits)
    Contexts.push_back(RoutingContext::build(C, Hw));

  auto Mappers = makePaperRouters();
  std::vector<BatchJob> Jobs;
  for (size_t CI = 0; CI < Circuits.size(); ++CI) {
    for (auto &M : Mappers) {
      BatchJob Job;
      Job.Mapper = M.get();
      Job.Ctx = &Contexts[CI];
      Job.BaselineDepth = Circuits[CI].depth();
      Jobs.push_back(Job);
    }
  }

  std::vector<RunRecord> Serial = runBatch(Jobs, 1);
  std::vector<RunRecord> Parallel = runBatch(Jobs, 4);
  ASSERT_EQ(Serial.size(), Jobs.size());
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    expectSameRecord(Serial[I], Parallel[I]);
    // Insertion-ordered aggregation: record I belongs to job I.
    EXPECT_EQ(Serial[I].Mapper, Jobs[I].Mapper->name());
    EXPECT_FALSE(Serial[I].Failed);
    EXPECT_TRUE(Serial[I].Verified);
  }
}

TEST(BatchRunnerTest, BadInputFailsItsRecordWithoutPoisoningTheBatch) {
  CouplingGraph Hw = makeLine(4);
  Circuit Fits = makeGhz(3);
  Circuit TooBig = makeGhz(12);
  RoutingContext GoodCtx = RoutingContext::build(Fits, Hw);
  RoutingContext BadCtx = RoutingContext::build(TooBig, Hw);
  ASSERT_TRUE(GoodCtx.valid());
  ASSERT_FALSE(BadCtx.valid());

  auto Mapper = makeRouterByName("sabre");
  std::vector<BatchJob> Jobs(3);
  Jobs[0] = {Mapper.get(), &GoodCtx, Fits.depth(), {}};
  Jobs[1] = {Mapper.get(), &BadCtx, TooBig.depth(), {}};
  Jobs[2] = {Mapper.get(), &GoodCtx, Fits.depth(), {}};

  std::vector<RunRecord> Records = runBatch(Jobs, 2);
  ASSERT_EQ(Records.size(), 3u);
  EXPECT_FALSE(Records[0].Failed);
  EXPECT_TRUE(Records[1].Failed);
  EXPECT_FALSE(Records[1].Error.empty());
  EXPECT_FALSE(Records[2].Failed);
  expectSameRecord(Records[0], Records[2]);

  // Failed records never contribute to aggregation.
  auto Summary = depthFactorSummary(Records, /*SplitDepth=*/550);
  ASSERT_EQ(Summary.count("SABRE"), 1u);
  EXPECT_GT(Summary["SABRE"].Medium, 0.0);
}

TEST(BatchRunnerTest, QuekoSweepIsThreadCountInvariant) {
  CouplingGraph Gen = makeAspen16();
  CouplingGraph Backend = makeGrid(4, 5);
  auto Mappers = makePaperRouters();
  std::vector<Router *> Ptrs;
  for (auto &M : Mappers)
    Ptrs.push_back(M.get());

  QuekoSweepConfig Config;
  Config.Depths = {10, 20};
  Config.CircuitsPerDepth = 2;

  Config.Threads = 1;
  std::vector<RunRecord> Serial = runQuekoSweep(Gen, Backend, Ptrs, Config);
  Config.Threads = 4;
  std::vector<RunRecord> Parallel = runQuekoSweep(Gen, Backend, Ptrs, Config);

  ASSERT_EQ(Serial.size(), 2u * 2u * Ptrs.size());
  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I < Serial.size(); ++I)
    expectSameRecord(Serial[I], Parallel[I]);
}
